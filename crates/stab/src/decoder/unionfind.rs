//! Weighted union-find decoder (Delfosse–Nickerson style) with peeling.
//!
//! This is the workhorse decoder for the surface-code experiments (paper
//! §4.2.1, Figs. 6–7). It substitutes for the minimum-weight perfect-matching
//! decoder the paper's Stim pipeline would use; union-find achieves
//! near-MWPM accuracy at far lower implementation and runtime cost, and the
//! paper's conclusions depend only on relative (heterogeneous vs
//! homogeneous) logical error rates.
//!
//! # Allocation-free decoding
//!
//! The production path decodes through a reusable [`DecoderScratch`]: all
//! per-shot state lives in flat arrays sized once per graph, reset sparsely
//! via epoch stamps (O(touched nodes), not O(n)), with intrusive-list
//! frontiers carved out of a per-shot cell pool so cluster growth and
//! unions never allocate. Shard loops decode straight from the packed
//! [`BitTable`] via [`UnionFindDecoder::count_failures`] /
//! [`UnionFindDecoder::decode_shots`], which extract sparse defect lists
//! with `trailing_zeros` over 64-bit words and skip all-zero syndromes
//! entirely.
//!
//! Predictions are **bit-identical** to the original per-shot decoder,
//! which is kept verbatim as [`UnionFindDecoder::decode_reference`] and
//! cross-checked by `tests/decode_scratch_differential.rs` (see
//! DESIGN.md §5k for the contract).

use crate::bits::{BitTable, ShotBlock};
use crate::decoder::graph::{CsrAdjacency, MatchingGraph};
use hetarch_obs as obs;

// Decoder metrics (no-ops unless the `obs` feature is on and
// `HETARCH_OBS=1`).
static DECODES: obs::Counter = obs::Counter::new("stab.decoder.decodes");
static EMPTY_FAST_PATH: obs::Counter = obs::Counter::new("stab.decoder.empty_fast_path");
static GROWTH_PASSES: obs::Counter = obs::Counter::new("stab.decoder.growth_passes");
static UNIONS: obs::Counter = obs::Counter::new("stab.decoder.unions");
static PEEL_DISCHARGES: obs::Counter = obs::Counter::new("stab.decoder.peel_discharges");
static PEEL_LEAKS: obs::Counter = obs::Counter::new("stab.decoder.peel_leaks");
static DECODE_NS: obs::Histogram = obs::Histogram::new("stab.decode_ns");

/// Empty link in the intrusive frontier lists.
const NIL: u32 = u32::MAX;
/// Boundary sentinel in the edge endpoint array.
const NO_NODE: u32 = u32::MAX;
/// Peel-forest parent sentinel: no parent (arbitrary root).
const PEEL_NONE: u32 = u32::MAX;
/// Peel-forest parent sentinel: reached through a boundary edge.
const PEEL_BOUNDARY: u32 = u32::MAX - 1;

const F_BOUNDARY: u8 = 1;
const F_VISITED: u8 = 2;
const F_MARKED: u8 = 4;
const F_PEEL_VISITED: u8 = 8;

/// A union-find decoder prebuilt for one matching graph.
///
/// Holds only the CSR adjacency and struct-of-arrays edge data it needs —
/// not a clone of the [`MatchingGraph`] it was built from.
///
/// # Examples
///
/// ```
/// use hetarch_stab::decoder::graph::MatchingGraph;
/// use hetarch_stab::decoder::unionfind::UnionFindDecoder;
///
/// // Three-node repetition-code strip with boundaries on both ends.
/// let mut g = MatchingGraph::new(2);
/// g.add_edge(0, None, 0.1, 1);      // left boundary, crosses the logical
/// g.add_edge(0, Some(1), 0.1, 0);   // middle
/// g.add_edge(1, None, 0.1, 0);      // right boundary
/// let decoder = UnionFindDecoder::new(&g);
/// // A defect on node 0 is closest to the left boundary: predicted flip.
/// assert_eq!(decoder.decode(&[true, false]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    num_nodes: usize,
    adjacency: CsrAdjacency,
    /// First endpoint per edge.
    edge_u: Vec<u32>,
    /// Second endpoint per edge, or [`NO_NODE`] for a boundary edge.
    edge_v: Vec<u32>,
    /// Observable mask per edge.
    edge_obs: Vec<u64>,
    /// Integer growth length per edge (quantized weight).
    lengths: Vec<u32>,
}

impl UnionFindDecoder {
    /// Builds a decoder for `graph`, quantizing edge weights to integer
    /// growth lengths.
    pub fn new(graph: &MatchingGraph) -> Self {
        let min_w = graph
            .edges()
            .iter()
            .map(|e| e.weight())
            .fold(f64::INFINITY, f64::min)
            .max(1e-3);
        let lengths = graph
            .edges()
            .iter()
            .map(|e| ((e.weight() / min_w * 4.0).round() as u32).clamp(1, 1 << 14))
            .collect();
        UnionFindDecoder {
            num_nodes: graph.num_nodes(),
            adjacency: graph.csr_adjacency(),
            edge_u: graph.edges().iter().map(|e| e.u).collect(),
            edge_v: graph
                .edges()
                .iter()
                .map(|e| e.v.unwrap_or(NO_NODE))
                .collect(),
            edge_obs: graph.edges().iter().map(|e| e.obs_mask).collect(),
            lengths,
        }
    }

    /// Number of detector nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges (error mechanisms).
    pub fn num_edges(&self) -> usize {
        self.lengths.len()
    }

    /// Allocates a scratch arena sized for this decoder's graph. The pool
    /// capacities are reserved to their worst-case bounds up front, so
    /// every subsequent decode through this scratch is allocation-free.
    pub fn new_scratch(&self) -> DecoderScratch {
        let n = self.num_nodes;
        let m = self.lengths.len();
        // Frontier cells are pushed at most once per (defect, incident
        // edge) at init and once per (visited node, incident edge) during
        // expansion: 2x the flat incidence count bounds the pool.
        let pool_cap = 2 * self.adjacency.num_incidences();
        DecoderScratch {
            num_nodes: n,
            num_edges: m,
            epoch: 0,
            pass_id: 0,
            node_epoch: vec![0; n],
            nodes: vec![NodeScratch::default(); n],
            pass_seen: vec![0; n],
            edge_epoch: vec![0; m],
            support: vec![0; m],
            grown: vec![false; m],
            pool_edge: Vec::with_capacity(pool_cap),
            pool_next: Vec::with_capacity(pool_cap),
            defects: Vec::with_capacity(n),
            candidates: Vec::with_capacity(2 * n),
            pass_roots: Vec::with_capacity(n),
            newly_grown: Vec::with_capacity(m),
            grown_boundary: Vec::with_capacity(m),
            order: Vec::with_capacity(n),
            queue: Vec::with_capacity(n),
            block: ShotBlock::new(),
            stalled: false,
        }
    }

    /// Decodes a syndrome (one bool per detector), returning the predicted
    /// logical-observable flip mask.
    ///
    /// Convenience wrapper that builds a fresh [`DecoderScratch`] per call;
    /// hot loops should hold one scratch and use
    /// [`Self::decode_with`] or the batch entry points instead.
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` differs from the graph's node count.
    pub fn decode(&self, syndrome: &[bool]) -> u64 {
        let mut scratch = self.new_scratch();
        self.decode_with(&mut scratch, syndrome)
    }

    /// Decodes a dense syndrome through a reusable scratch arena.
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` differs from the graph's node count or
    /// the scratch was built for a different graph shape.
    pub fn decode_with(&self, scratch: &mut DecoderScratch, syndrome: &[bool]) -> u64 {
        assert_eq!(syndrome.len(), self.num_nodes, "syndrome length mismatch");
        scratch.check_shape(self.num_nodes, self.lengths.len());
        scratch.defects.clear();
        for (v, &s) in syndrome.iter().enumerate() {
            if s {
                scratch.defects.push(v as u32);
            }
        }
        self.decode_current(scratch)
    }

    /// Decodes a sparse syndrome given as a strictly ascending list of
    /// defect (detector) indices.
    ///
    /// # Panics
    ///
    /// Panics if the scratch shape mismatches; defect ordering is checked
    /// by `debug_assert` only.
    pub fn decode_defects(&self, scratch: &mut DecoderScratch, defects: &[u32]) -> u64 {
        scratch.check_shape(self.num_nodes, self.lengths.len());
        scratch.defects.clear();
        scratch.defects.extend_from_slice(defects);
        self.decode_current(scratch)
    }

    /// Decodes shots `start..start + len` straight from packed detector
    /// samples and counts prediction/observable mismatches.
    ///
    /// Defect lists are extracted per 64-shot word block with
    /// `trailing_zeros`; all-zero syndromes never reach the decoder (the
    /// sparse fast path). Failure bits are compared a word at a time.
    ///
    /// # Panics
    ///
    /// Panics if the detector row count differs from the graph's node
    /// count, the shot range is out of bounds, or `obs_row` is out of
    /// range.
    pub fn count_failures(
        &self,
        scratch: &mut DecoderScratch,
        detectors: &BitTable,
        observables: &BitTable,
        obs_row: usize,
        start: usize,
        len: usize,
    ) -> u64 {
        let mut failures = 0u64;
        self.decode_blocks(
            scratch,
            detectors,
            observables,
            obs_row,
            start,
            len,
            |mismatch, _, _| {
                failures += mismatch.count_ones() as u64;
            },
        );
        failures
    }

    /// As [`Self::count_failures`], but reports every shot's failure bit to
    /// `on_shot(shot_index, failed)` — the entry point for weighted
    /// accumulation (the rare-event enumerated strata).
    #[allow(clippy::too_many_arguments)]
    pub fn decode_shots(
        &self,
        scratch: &mut DecoderScratch,
        detectors: &BitTable,
        observables: &BitTable,
        obs_row: usize,
        start: usize,
        len: usize,
        mut on_shot: impl FnMut(usize, bool),
    ) {
        self.decode_blocks(
            scratch,
            detectors,
            observables,
            obs_row,
            start,
            len,
            |mismatch, block, lane_range| {
                for lane in lane_range {
                    on_shot(block * 64 + lane, (mismatch >> lane) & 1 == 1);
                }
            },
        );
    }

    /// Shared block loop of the batch entry points: per 64-shot word
    /// column, extract sparse defect lists, decode the occupied lanes, and
    /// hand the caller the mismatch word.
    #[allow(clippy::too_many_arguments)]
    fn decode_blocks(
        &self,
        scratch: &mut DecoderScratch,
        detectors: &BitTable,
        observables: &BitTable,
        obs_row: usize,
        start: usize,
        len: usize,
        mut on_block: impl FnMut(u64, usize, std::ops::Range<usize>),
    ) {
        assert_eq!(
            detectors.rows(),
            self.num_nodes,
            "detector row count mismatch"
        );
        assert_eq!(
            detectors.shots(),
            observables.shots(),
            "shot count mismatch"
        );
        assert!(start + len <= detectors.shots(), "shot range out of bounds");
        assert!(obs_row < observables.rows(), "observable row out of range");
        scratch.check_shape(self.num_nodes, self.lengths.len());
        let span = obs::span!(DECODE_NS);
        let end = start + len;
        let mut shot = start;
        // Take the block buffer out so the borrow checker lets the decoder
        // read its lane lists while mutating the rest of the scratch.
        let mut block_buf = std::mem::take(&mut scratch.block);
        while shot < end {
            let block = shot / 64;
            let lane_lo = shot % 64;
            let block_end = ((block + 1) * 64).min(end);
            let lanes = block_end - shot;
            let mask = lane_mask(lane_lo, lanes);
            let occupied = block_buf.load(detectors, block, mask);
            EMPTY_FAST_PATH.add((mask & !occupied).count_ones() as u64);
            let mut predicted = 0u64;
            let mut pending = occupied;
            while pending != 0 {
                let lane = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                scratch.defects.clear();
                scratch.defects.extend_from_slice(block_buf.rows(lane));
                predicted |= (self.decode_current(scratch) & 1) << lane;
            }
            let actual = observables.word(obs_row, block);
            on_block((predicted ^ actual) & mask, block, lane_lo..lane_lo + lanes);
            shot = block_end;
        }
        scratch.block = block_buf;
        drop(span);
    }

    /// Decodes the defect list currently staged in `scratch.defects`.
    fn decode_current(&self, scratch: &mut DecoderScratch) -> u64 {
        if scratch.defects.is_empty() {
            EMPTY_FAST_PATH.add(1);
            return 0;
        }
        DECODES.add(1);
        scratch.begin_shot();
        // Defect init mirrors the reference's two ascending passes over the
        // dense syndrome: parities first, then frontier lists in incident
        // (ascending-edge) order.
        for i in 0..scratch.defects.len() {
            let v = scratch.defects[i] as usize;
            debug_assert!(
                v < self.num_nodes && (i == 0 || scratch.defects[i - 1] < scratch.defects[i]),
                "defect list must be strictly ascending and in range"
            );
            scratch.touch_node(v);
            scratch.nodes[v].parity = 1;
            scratch.nodes[v].flags |= F_MARKED;
        }
        for i in 0..scratch.defects.len() {
            let v = scratch.defects[i] as usize;
            for &e in self.adjacency.incident(v) {
                scratch.frontier_push(v, e);
            }
        }
        self.grow(scratch);
        self.peel(scratch)
    }

    /// Cluster growth until every cluster is neutral (even parity or
    /// touching the boundary).
    ///
    /// The per-pass active set is maintained as a worklist instead of an
    /// O(n) scan: candidates are the initial defects plus every union
    /// survivor; each pass maps them through `find`, dedupes with a pass
    /// stamp, and sorts — reproducing the reference's ascending-root order
    /// exactly. A pass that makes no progress (every frontier empty or
    /// fully grown) marks the scratch `stalled` and stops instead of
    /// spinning, which can only happen on degenerate graphs where an
    /// odd-parity cluster has no path to a boundary.
    fn grow(&self, scratch: &mut DecoderScratch) {
        let mut passes = 0u64;
        let mut unions = 0u64;
        scratch.candidates.clear();
        scratch.candidates.extend_from_slice(&scratch.defects);
        loop {
            passes += 1;
            scratch.pass_id += 1;
            scratch.pass_roots.clear();
            for i in 0..scratch.candidates.len() {
                let c = scratch.candidates[i] as usize;
                let r = scratch.find(c);
                if scratch.pass_seen[r] == scratch.pass_id {
                    continue;
                }
                scratch.pass_seen[r] = scratch.pass_id;
                let node = &scratch.nodes[r];
                if node.parity % 2 == 1 && node.flags & F_BOUNDARY == 0 {
                    scratch.pass_roots.push(r as u32);
                }
            }
            if scratch.pass_roots.is_empty() {
                break;
            }
            scratch.pass_roots.sort_unstable();
            scratch.candidates.clear();
            scratch.candidates.extend_from_slice(&scratch.pass_roots);
            scratch.newly_grown.clear();
            let mut progressed = false;
            for i in 0..scratch.pass_roots.len() {
                // Re-fetch root (it may have been merged earlier this pass).
                let root = scratch.find(scratch.pass_roots[i] as usize);
                if scratch.nodes[root].parity.is_multiple_of(2)
                    || scratch.nodes[root].flags & F_BOUNDARY != 0
                {
                    continue;
                }
                // Take this root's frontier list; surviving cells are
                // relinked in place, so growth never allocates.
                let mut cur = scratch.nodes[root].f_head;
                scratch.nodes[root].f_head = NIL;
                scratch.nodes[root].f_tail = NIL;
                scratch.nodes[root].f_len = 0;
                while cur != NIL {
                    let next = scratch.pool_next[cur as usize];
                    let ei = scratch.pool_edge[cur as usize] as usize;
                    scratch.touch_edge(ei);
                    if !scratch.grown[ei] {
                        progressed = true;
                        scratch.support[ei] += 1;
                        if scratch.support[ei] >= self.lengths[ei] {
                            scratch.grown[ei] = true;
                            scratch.newly_grown.push(ei as u32);
                        } else {
                            scratch.pool_next[cur as usize] = NIL;
                            scratch.frontier_link(root, cur);
                        }
                    }
                    cur = next;
                }
            }
            for i in 0..scratch.newly_grown.len() {
                let ei = scratch.newly_grown[i] as usize;
                let u = self.edge_u[ei] as usize;
                let ru = scratch.find(u);
                let v = self.edge_v[ei];
                if v == NO_NODE {
                    scratch.nodes[ru].flags |= F_BOUNDARY;
                    scratch.grown_boundary.push(ei as u32);
                } else {
                    let rv = scratch.find(v as usize);
                    // Expand the frontier of whichever side is new.
                    for node in [u, v as usize] {
                        let r = scratch.find(node);
                        if scratch.nodes[node].flags & F_VISITED == 0 {
                            scratch.nodes[node].flags |= F_VISITED;
                            for &x in self.adjacency.incident(node) {
                                scratch.touch_edge(x as usize);
                                if !scratch.grown[x as usize] {
                                    scratch.frontier_push(r, x);
                                }
                            }
                        }
                    }
                    if ru != rv {
                        scratch.union(ru, rv);
                        unions += 1;
                    }
                }
            }
            if !progressed {
                scratch.stalled = true;
                break;
            }
        }
        GROWTH_PASSES.add(passes);
        UNIONS.add(unions);
    }

    /// Peeling: build a spanning forest of grown edges inside each cluster
    /// and discharge defects toward boundary-rooted trees.
    fn peel(&self, scratch: &mut DecoderScratch) -> u64 {
        // BFS seeded from boundary-grown edges first (ascending edge index,
        // as the reference's full edge scan produced) so defects can drain
        // into the boundary.
        scratch.grown_boundary.sort_unstable();
        for i in 0..scratch.grown_boundary.len() {
            let ei = scratch.grown_boundary[i];
            let u = self.edge_u[ei as usize] as usize;
            scratch.touch_node(u);
            if scratch.nodes[u].flags & F_PEEL_VISITED == 0 {
                scratch.nodes[u].flags |= F_PEEL_VISITED;
                scratch.nodes[u].peel_parent_node = PEEL_BOUNDARY;
                scratch.nodes[u].peel_parent_edge = ei;
                scratch.queue.push(u as u32);
            }
        }
        // Then arbitrary roots for remaining cluster nodes. The reference
        // rescans `0..n` for an unvisited marked node; marked nodes are
        // exactly the defects and visitation is monotone, so one ascending
        // pointer over the defect list is equivalent.
        let mut qhead = 0usize;
        let mut defect_ptr = 0usize;
        loop {
            while qhead < scratch.queue.len() {
                let u = scratch.queue[qhead] as usize;
                qhead += 1;
                scratch.order.push(u as u32);
                for &ei in self.adjacency.incident(u) {
                    let e = ei as usize;
                    scratch.touch_edge(e);
                    if !scratch.grown[e] {
                        continue;
                    }
                    let v = self.edge_v[e];
                    if v == NO_NODE {
                        continue;
                    }
                    let other = if self.edge_u[e] as usize == u {
                        v as usize
                    } else {
                        self.edge_u[e] as usize
                    };
                    scratch.touch_node(other);
                    if scratch.nodes[other].flags & F_PEEL_VISITED == 0 {
                        scratch.nodes[other].flags |= F_PEEL_VISITED;
                        scratch.nodes[other].peel_parent_node = u as u32;
                        scratch.nodes[other].peel_parent_edge = ei;
                        scratch.queue.push(other as u32);
                    }
                }
            }
            let mut seeded = false;
            while defect_ptr < scratch.defects.len() {
                let v = scratch.defects[defect_ptr] as usize;
                if scratch.nodes[v].flags & F_PEEL_VISITED == 0 {
                    scratch.nodes[v].flags |= F_PEEL_VISITED;
                    scratch.queue.push(v as u32);
                    seeded = true;
                    break;
                }
                defect_ptr += 1;
            }
            if !seeded {
                break;
            }
        }

        let mut obs_mask = 0u64;
        let mut discharges = 0u64;
        let mut leaks = 0u64;
        for i in (0..scratch.order.len()).rev() {
            let u = scratch.order[i] as usize;
            if scratch.nodes[u].flags & F_MARKED == 0 {
                continue;
            }
            let p = scratch.nodes[u].peel_parent_node;
            if p == PEEL_NONE {
                // A marked arbitrary root would leave this defect
                // undecoded. Invariant: growth leaves every cluster with
                // even parity or a boundary, whose peel trees discharge
                // fully — an arbitrary root (odd, boundary-free cluster)
                // can only exist if growth stalled on a degenerate graph
                // (e.g. an isolated defect with no edges at all).
                leaks += 1;
                debug_assert!(
                    scratch.stalled,
                    "peel parity leak at node {u} without a stalled growth phase"
                );
                continue;
            }
            let ei = scratch.nodes[u].peel_parent_edge as usize;
            obs_mask ^= self.edge_obs[ei];
            scratch.nodes[u].flags &= !F_MARKED;
            discharges += 1;
            if p != PEEL_BOUNDARY {
                scratch.nodes[p as usize].flags ^= F_MARKED;
            }
        }
        PEEL_DISCHARGES.add(discharges);
        if leaks > 0 {
            PEEL_LEAKS.add(leaks);
        }
        obs_mask
    }

    /// The original per-shot decoder, kept verbatim as the bit-identity
    /// oracle for the scratch/batch paths (mirroring `apply_reference` in
    /// qsim). Allocates a fresh dense [`DecodeState`] per call.
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` differs from the graph's node count.
    pub fn decode_reference(&self, syndrome: &[bool]) -> u64 {
        let n = self.num_nodes;
        assert_eq!(syndrome.len(), n, "syndrome length mismatch");
        if syndrome.iter().all(|&s| !s) {
            return 0;
        }
        let mut state = DecodeState::new(n, self.lengths.len());
        for (v, &s) in syndrome.iter().enumerate() {
            if s {
                state.defect[v] = true;
                state.parity[v] = 1;
            }
        }
        // Initialize boundary lists: every defect node's incident edges.
        for v in 0..n {
            if state.defect[v] {
                state.frontier[v] = self.adjacency.incident(v).to_vec();
            }
        }
        self.grow_reference(&mut state);
        self.peel_reference(&mut state, syndrome)
    }

    /// Reference growth: O(n) active-root scan per pass, `Vec` frontiers.
    fn grow_reference(&self, state: &mut DecodeState) {
        let n = self.num_nodes;
        loop {
            let active: Vec<usize> = (0..n)
                .filter(|&v| {
                    state.find(v) == v && state.parity[v] % 2 == 1 && !state.has_boundary[v]
                })
                .collect();
            if active.is_empty() {
                return;
            }
            let mut newly_grown: Vec<u32> = Vec::new();
            for root in active {
                // Re-fetch root (it may have been merged earlier this pass).
                let root = state.find(root);
                if state.parity[root].is_multiple_of(2) || state.has_boundary[root] {
                    continue;
                }
                let edges = std::mem::take(&mut state.frontier[root]);
                let mut keep = Vec::with_capacity(edges.len());
                for &ei in &edges {
                    if state.grown[ei as usize] {
                        continue;
                    }
                    state.support[ei as usize] += 1;
                    if state.support[ei as usize] >= self.lengths[ei as usize] {
                        state.grown[ei as usize] = true;
                        newly_grown.push(ei);
                    } else {
                        keep.push(ei);
                    }
                }
                let root_now = state.find(root);
                state.frontier[root_now].extend(keep);
            }
            for ei in newly_grown {
                let ei = ei as usize;
                let u = self.edge_u[ei] as usize;
                let ru = state.find(u);
                let v = self.edge_v[ei];
                if v == NO_NODE {
                    state.has_boundary[ru] = true;
                } else {
                    let rv = state.find(v as usize);
                    // Expand the frontier of whichever side is new.
                    for node in [u, v as usize] {
                        let r = state.find(node);
                        if !state.visited[node] {
                            state.visited[node] = true;
                            let extra: Vec<u32> = self
                                .adjacency
                                .incident(node)
                                .iter()
                                .copied()
                                .filter(|&x| !state.grown[x as usize])
                                .collect();
                            state.frontier[r].extend(extra);
                        }
                    }
                    if ru != rv {
                        state.union(ru, rv);
                    }
                }
            }
        }
    }

    /// Reference peeling with dense visited/marked/parent vectors.
    fn peel_reference(&self, state: &mut DecodeState, syndrome: &[bool]) -> u64 {
        let n = self.num_nodes;
        let m = self.lengths.len();
        let mut marked: Vec<bool> = syndrome.to_vec();
        let mut visited = vec![false; n];
        // parent[v] = (parent node or usize::MAX for boundary, edge).
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
        let mut order: Vec<usize> = Vec::new();

        // BFS seeded from boundary-grown edges first so defects can drain
        // into the boundary.
        let mut queue = std::collections::VecDeque::new();
        for ei in 0..m {
            if state.grown[ei] && self.edge_v[ei] == NO_NODE {
                let u = self.edge_u[ei] as usize;
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = Some((usize::MAX, ei as u32));
                    queue.push_back(u);
                }
            }
        }
        // Then arbitrary roots for remaining cluster nodes.
        loop {
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &ei in self.adjacency.incident(u) {
                    if !state.grown[ei as usize] {
                        continue;
                    }
                    let v = self.edge_v[ei as usize];
                    if v == NO_NODE {
                        continue;
                    }
                    let other = if self.edge_u[ei as usize] as usize == u {
                        v as usize
                    } else {
                        self.edge_u[ei as usize] as usize
                    };
                    if !visited[other] {
                        visited[other] = true;
                        parent[other] = Some((u, ei));
                        queue.push_back(other);
                    }
                }
            }
            if let Some(seed) = (0..n).find(|&v| !visited[v] && marked[v]) {
                visited[seed] = true;
                queue.push_back(seed);
            } else {
                break;
            }
        }

        let mut obs_mask = 0u64;
        for &u in order.iter().rev() {
            if !marked[u] {
                continue;
            }
            let Some((p, ei)) = parent[u] else {
                // A marked arbitrary root: parity leak (cannot happen on
                // valid even-parity clusters); leave undecoded.
                continue;
            };
            obs_mask ^= self.edge_obs[ei as usize];
            marked[u] = false;
            if p != usize::MAX {
                marked[p] = !marked[p];
            }
        }
        obs_mask
    }
}

/// Masks lanes `lo..lo + count` of a 64-shot word.
#[inline]
fn lane_mask(lo: usize, count: usize) -> u64 {
    debug_assert!(lo + count <= 64 && count > 0);
    let full = if count == 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    };
    full << lo
}

/// Per-node decode state, reset lazily by epoch stamp.
#[derive(Clone, Copy, Debug, Default)]
struct NodeScratch {
    parent: u32,
    parity: u32,
    /// Intrusive frontier list head/tail/length (cells in the scratch pool).
    f_head: u32,
    f_tail: u32,
    f_len: u32,
    peel_parent_node: u32,
    peel_parent_edge: u32,
    flags: u8,
}

/// Reusable decode arena: all per-shot state for one
/// [`UnionFindDecoder`], reset sparsely between shots.
///
/// Owned per shard and reused across shots; see DESIGN.md §5k for the
/// reset discipline. Build with [`UnionFindDecoder::new_scratch`].
#[derive(Clone, Debug)]
pub struct DecoderScratch {
    num_nodes: usize,
    num_edges: usize,
    /// Current shot's epoch; state stamped with an older epoch is stale.
    epoch: u32,
    /// Monotone growth-pass stamp for worklist dedupe (never reset).
    pass_id: u64,
    node_epoch: Vec<u32>,
    nodes: Vec<NodeScratch>,
    pass_seen: Vec<u64>,
    edge_epoch: Vec<u32>,
    support: Vec<u32>,
    grown: Vec<bool>,
    /// Frontier cell pool: edge payload + next link, cleared per shot.
    pool_edge: Vec<u32>,
    pool_next: Vec<u32>,
    /// Staged defect list (strictly ascending detector indices).
    defects: Vec<u32>,
    /// Growth worklist: initial defects plus union survivors.
    candidates: Vec<u32>,
    pass_roots: Vec<u32>,
    newly_grown: Vec<u32>,
    grown_boundary: Vec<u32>,
    order: Vec<u32>,
    queue: Vec<u32>,
    /// Sparse syndrome extraction buffer for the batch entry points.
    block: ShotBlock,
    /// Set when a growth pass made no progress (degenerate graph with an
    /// odd-parity cluster that cannot reach a boundary); licenses the peel
    /// parity-leak branch.
    stalled: bool,
}

impl DecoderScratch {
    fn check_shape(&self, n: usize, m: usize) {
        assert_eq!(
            (self.num_nodes, self.num_edges),
            (n, m),
            "scratch was built for a different graph shape"
        );
    }

    /// Starts a new shot: bump the epoch (stale state resets lazily on
    /// first touch) and clear the per-shot lists. O(touched), except on
    /// epoch wraparound every 2³² shots, where the stamp arrays are
    /// rewritten in full.
    fn begin_shot(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.node_epoch.fill(u32::MAX);
            self.edge_epoch.fill(u32::MAX);
            self.epoch = 1;
        }
        self.pool_edge.clear();
        self.pool_next.clear();
        self.newly_grown.clear();
        self.grown_boundary.clear();
        self.order.clear();
        self.queue.clear();
        self.candidates.clear();
        self.pass_roots.clear();
        self.stalled = false;
    }

    /// Lazily resets node `v` if it was last touched in an older shot.
    #[inline]
    fn touch_node(&mut self, v: usize) {
        if self.node_epoch[v] != self.epoch {
            self.node_epoch[v] = self.epoch;
            self.nodes[v] = NodeScratch {
                parent: v as u32,
                parity: 0,
                f_head: NIL,
                f_tail: NIL,
                f_len: 0,
                peel_parent_node: PEEL_NONE,
                peel_parent_edge: 0,
                flags: 0,
            };
        }
    }

    /// Lazily resets edge `e` if it was last touched in an older shot.
    #[inline]
    fn touch_edge(&mut self, e: usize) {
        if self.edge_epoch[e] != self.epoch {
            self.edge_epoch[e] = self.epoch;
            self.support[e] = 0;
            self.grown[e] = false;
        }
    }

    fn find(&mut self, v: usize) -> usize {
        self.touch_node(v);
        let mut root = v;
        while self.nodes[root].parent as usize != root {
            root = self.nodes[root].parent as usize;
        }
        let mut cur = v;
        while self.nodes[cur].parent as usize != cur {
            let next = self.nodes[cur].parent as usize;
            self.nodes[cur].parent = root as u32;
            cur = next;
        }
        root
    }

    /// Appends a new frontier cell for `edge` to `root`'s list.
    fn frontier_push(&mut self, root: usize, edge: u32) {
        let cell = self.pool_edge.len() as u32;
        self.pool_edge.push(edge);
        self.pool_next.push(NIL);
        self.frontier_link(root, cell);
    }

    /// Links an existing (detached) cell at the tail of `root`'s list.
    #[inline]
    fn frontier_link(&mut self, root: usize, cell: u32) {
        let tail = self.nodes[root].f_tail;
        if tail == NIL {
            self.nodes[root].f_head = cell;
        } else {
            self.pool_next[tail as usize] = cell;
        }
        self.nodes[root].f_tail = cell;
        self.nodes[root].f_len += 1;
    }

    /// Union with the reference tie-break: the root with the longer
    /// frontier absorbs the other (ties go to the first argument), and the
    /// frontier lists concatenate big-then-small — the element order the
    /// reference's `Vec::extend` produced. The survivor goes back on the
    /// growth worklist.
    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Merge smaller frontier into larger.
        let (big, small) = if self.nodes[ra].f_len >= self.nodes[rb].f_len {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.nodes[small].parent = big as u32;
        let (s_head, s_tail, s_len) = (
            self.nodes[small].f_head,
            self.nodes[small].f_tail,
            self.nodes[small].f_len,
        );
        if s_len > 0 {
            let b_tail = self.nodes[big].f_tail;
            if b_tail == NIL {
                self.nodes[big].f_head = s_head;
            } else {
                self.pool_next[b_tail as usize] = s_head;
            }
            self.nodes[big].f_tail = s_tail;
            self.nodes[big].f_len += s_len;
            self.nodes[small].f_head = NIL;
            self.nodes[small].f_tail = NIL;
            self.nodes[small].f_len = 0;
        }
        self.nodes[big].parity += self.nodes[small].parity;
        self.nodes[big].flags |= self.nodes[small].flags & F_BOUNDARY;
        self.candidates.push(big as u32);
    }
}

/// Dense per-shot state of the reference decoder (allocated per call).
#[derive(Clone, Debug)]
struct DecodeState {
    parent: Vec<u32>,
    parity: Vec<u32>,
    has_boundary: Vec<bool>,
    defect: Vec<bool>,
    visited: Vec<bool>,
    frontier: Vec<Vec<u32>>,
    support: Vec<u32>,
    grown: Vec<bool>,
}

impl DecodeState {
    fn new(n: usize, m: usize) -> Self {
        DecodeState {
            parent: (0..n as u32).collect(),
            parity: vec![0; n],
            has_boundary: vec![false; n],
            defect: vec![false; n],
            visited: vec![false; n],
            frontier: vec![Vec::new(); n],
            support: vec![0; m],
            grown: vec![false; m],
        }
    }

    fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = v;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Merge smaller frontier into larger.
        let (big, small) = if self.frontier[ra].len() >= self.frontier[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        let moved = std::mem::take(&mut self.frontier[small]);
        self.frontier[big].extend(moved);
        self.parity[big] += self.parity[small];
        self.has_boundary[big] |= self.has_boundary[small];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::graph::MatchingGraph;

    /// Repetition-code strip: d data qubits, d−1 detectors, boundaries at
    /// both ends; the left boundary edge crosses the logical.
    fn strip(d: usize, p: f64) -> MatchingGraph {
        let mut g = MatchingGraph::new(d - 1);
        g.add_edge(0, None, p, 1);
        for i in 0..d - 2 {
            g.add_edge(i as u32, Some(i as u32 + 1), p, 0);
        }
        g.add_edge(d as u32 - 2, None, p, 0);
        g
    }

    /// Applies physical errors on a strip and returns (syndrome, true obs).
    fn apply_errors(d: usize, errs: &[usize]) -> (Vec<bool>, u64) {
        // Edge i connects detectors (i-1, i); edge 0 and edge d-1 are
        // boundary edges. Error on edge i fires its endpoints.
        let mut syn = vec![false; d - 1];
        let mut obs = 0u64;
        for &e in errs {
            if e == 0 {
                syn[0] ^= true;
                obs ^= 1;
            } else if e == d - 1 {
                syn[d - 2] ^= true;
            } else {
                syn[e - 1] ^= true;
                syn[e] ^= true;
            }
        }
        (syn, obs)
    }

    #[test]
    fn empty_syndrome_decodes_to_identity() {
        let g = strip(5, 0.1);
        let dec = UnionFindDecoder::new(&g);
        assert_eq!(dec.decode(&[false; 4]), 0);
    }

    #[test]
    fn single_errors_are_corrected() {
        let d = 7;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        for e in 0..d {
            let (syn, obs) = apply_errors(d, &[e]);
            assert_eq!(dec.decode(&syn), obs, "error on edge {e}");
        }
    }

    #[test]
    fn correctable_double_errors() {
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        for a in 0..d {
            for b in (a + 1)..d {
                let (syn, obs) = apply_errors(d, &[a, b]);
                let pred = dec.decode(&syn);
                // Prediction must produce the same syndrome class: for a
                // distance-9 strip any ≤4 errors are correctable.
                assert_eq!(pred, obs, "errors on edges {a},{b}");
            }
        }
    }

    #[test]
    fn uncorrectable_majority_flips_logical() {
        // 5 errors out of d=9 on the left side: decoder should prefer the
        // complementary (weight-4) correction and report a logical flip
        // relative to the actual error.
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        let errs: Vec<usize> = (0..5).collect();
        let (syn, obs) = apply_errors(d, &errs);
        let pred = dec.decode(&syn);
        assert_ne!(pred, obs, "majority error should defeat the decoder");
    }

    #[test]
    fn weights_bias_toward_likelier_edges() {
        // Two-node graph: one defect pair connected either directly
        // (unlikely) or via two boundary edges (likely). Decoder must pick
        // the boundary route when it is cheaper.
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.0001, 1); // direct, expensive, flips obs
        g.add_edge(0, None, 0.2, 0);
        g.add_edge(1, None, 0.2, 0);
        let dec = UnionFindDecoder::new(&g);
        let pred = dec.decode(&[true, true]);
        assert_eq!(pred, 0, "should route both defects to the boundary");

        // Flip the economics: direct edge cheap.
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.2, 1);
        g.add_edge(0, None, 0.0001, 0);
        g.add_edge(1, None, 0.0001, 0);
        let dec = UnionFindDecoder::new(&g);
        assert_eq!(dec.decode(&[true, true]), 1, "should use the direct edge");
    }

    #[test]
    fn grid_graph_with_time_edges() {
        // 2 rounds × 3 detectors; time edges between rounds; a measurement
        // error fires (t, f) and (t+1, f) and must decode as a time edge
        // (no observable flip).
        let mut g = MatchingGraph::new(6);
        for t in 0..2u32 {
            let base = t * 3;
            g.add_edge(base, None, 0.01, 1);
            g.add_edge(base, Some(base + 1), 0.01, 0);
            g.add_edge(base + 1, Some(base + 2), 0.01, 0);
            g.add_edge(base + 2, None, 0.01, 0);
        }
        for f in 0..3u32 {
            g.add_edge(f, Some(f + 3), 0.01, 0);
        }
        let dec = UnionFindDecoder::new(&g);
        let mut syn = vec![false; 6];
        syn[1] = true;
        syn[4] = true;
        assert_eq!(dec.decode(&syn), 0);
    }

    #[test]
    fn scratch_reuse_matches_reference_on_strip() {
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        let mut scratch = dec.new_scratch();
        // Every 1- and 2-error pattern, decoded through ONE reused scratch,
        // must match the pristine reference decoder bit for bit.
        for a in 0..d {
            for b in a..d {
                let errs: Vec<usize> = if a == b { vec![a] } else { vec![a, b] };
                let (syn, _) = apply_errors(d, &errs);
                assert_eq!(
                    dec.decode_with(&mut scratch, &syn),
                    dec.decode_reference(&syn),
                    "errors on edges {a},{b}"
                );
            }
        }
    }

    #[test]
    fn decode_defects_matches_dense_path() {
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        let mut scratch = dec.new_scratch();
        let (syn, _) = apply_errors(d, &[2, 5]);
        let defects: Vec<u32> = syn
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(v, _)| v as u32)
            .collect();
        assert_eq!(
            dec.decode_defects(&mut scratch, &defects),
            dec.decode_reference(&syn)
        );
    }

    #[test]
    fn batch_count_failures_matches_per_shot() {
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        let n = d - 1;
        // 130 shots spanning three word blocks, each a pseudo-random error
        // pattern; observables carry the TRUE obs so a failure means the
        // decoder mispredicted.
        let shots = 130;
        let mut detectors = BitTable::new(n, shots);
        let mut observables = BitTable::new(1, shots);
        let mut expect = 0u64;
        let mut rng = 0x9e3779b97f4a7c15u64;
        for shot in 0..shots {
            let mut errs = Vec::new();
            for e in 0..d {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if rng >> 62 == 0 {
                    errs.push(e);
                }
            }
            let (syn, obs) = apply_errors(d, &errs);
            for (v, &s) in syn.iter().enumerate() {
                detectors.set(v, shot, s);
            }
            observables.set(0, shot, obs & 1 == 1);
            if dec.decode_reference(&syn) & 1 != obs & 1 {
                expect += 1;
            }
        }
        let mut scratch = dec.new_scratch();
        let got = dec.count_failures(&mut scratch, &detectors, &observables, 0, 0, shots);
        assert_eq!(got, expect);
        // Sub-range starting off a word boundary.
        let mut partial = 0u64;
        dec.decode_shots(
            &mut scratch,
            &detectors,
            &observables,
            0,
            37,
            60,
            |shot, failed| {
                assert!((37..97).contains(&shot));
                if failed {
                    partial += 1;
                }
            },
        );
        assert_eq!(
            partial,
            dec.count_failures(&mut scratch, &detectors, &observables, 0, 37, 60)
        );
    }

    #[test]
    fn stalled_growth_terminates_on_degenerate_graphs() {
        // A defect on a node with no incident edges: the reference decoder
        // would spin forever; the scratch path must stall, terminate, and
        // (in release) simply leave the defect undecoded.
        let mut g = MatchingGraph::new(3);
        g.add_edge(0, Some(1), 0.1, 1); // node 2 is edgeless
        let dec = UnionFindDecoder::new(&g);
        let mut scratch = dec.new_scratch();
        // Both defects of the even, boundary-free component discharge over
        // the direct edge; terminates without a boundary.
        assert_eq!(dec.decode_with(&mut scratch, &[true, true, false]), 1);
        // A defect on the edgeless node stalls growth and is left
        // undecoded (counted as a peel leak) instead of hanging.
        assert_eq!(dec.decode_with(&mut scratch, &[false, false, true]), 0);
        // The scratch remains healthy after a stalled shot.
        assert_eq!(dec.decode_with(&mut scratch, &[true, true, false]), 1);
    }
}
