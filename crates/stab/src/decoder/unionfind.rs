//! Weighted union-find decoder (Delfosse–Nickerson style) with peeling.
//!
//! This is the workhorse decoder for the surface-code experiments (paper
//! §4.2.1, Figs. 6–7). It substitutes for the minimum-weight perfect-matching
//! decoder the paper's Stim pipeline would use; union-find achieves
//! near-MWPM accuracy at far lower implementation and runtime cost, and the
//! paper's conclusions depend only on relative (heterogeneous vs
//! homogeneous) logical error rates.

use crate::decoder::graph::MatchingGraph;

/// A union-find decoder prebuilt for one matching graph.
///
/// # Examples
///
/// ```
/// use hetarch_stab::decoder::graph::MatchingGraph;
/// use hetarch_stab::decoder::unionfind::UnionFindDecoder;
///
/// // Three-node repetition-code strip with boundaries on both ends.
/// let mut g = MatchingGraph::new(2);
/// g.add_edge(0, None, 0.1, 1);      // left boundary, crosses the logical
/// g.add_edge(0, Some(1), 0.1, 0);   // middle
/// g.add_edge(1, None, 0.1, 0);      // right boundary
/// let decoder = UnionFindDecoder::new(&g);
/// // A defect on node 0 is closest to the left boundary: predicted flip.
/// assert_eq!(decoder.decode(&[true, false]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    graph: MatchingGraph,
    adjacency: Vec<Vec<u32>>,
    /// Integer growth length per edge (quantized weight).
    lengths: Vec<u32>,
}

impl UnionFindDecoder {
    /// Builds a decoder for `graph`, quantizing edge weights to integer
    /// growth lengths.
    pub fn new(graph: &MatchingGraph) -> Self {
        let min_w = graph
            .edges()
            .iter()
            .map(|e| e.weight())
            .fold(f64::INFINITY, f64::min)
            .max(1e-3);
        let lengths = graph
            .edges()
            .iter()
            .map(|e| ((e.weight() / min_w * 4.0).round() as u32).clamp(1, 1 << 14))
            .collect();
        UnionFindDecoder {
            graph: graph.clone(),
            adjacency: graph.adjacency(),
            lengths,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// Decodes a syndrome (one bool per detector), returning the predicted
    /// logical-observable flip mask.
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` differs from the graph's node count.
    pub fn decode(&self, syndrome: &[bool]) -> u64 {
        let n = self.graph.num_nodes();
        assert_eq!(syndrome.len(), n, "syndrome length mismatch");
        if syndrome.iter().all(|&s| !s) {
            return 0;
        }
        let mut state = DecodeState::new(n, self.graph.edges().len());
        for (v, &s) in syndrome.iter().enumerate() {
            if s {
                state.defect[v] = true;
                state.parity[v] = 1;
            }
        }
        // Initialize boundary lists: every defect node's incident edges.
        for v in 0..n {
            if state.defect[v] {
                state.frontier[v] = self.adjacency[v].clone();
            }
        }
        self.grow(&mut state);
        self.peel(&mut state, syndrome)
    }

    /// Cluster growth until every cluster is neutral (even parity or touching
    /// the boundary).
    fn grow(&self, state: &mut DecodeState) {
        let n = self.graph.num_nodes();
        loop {
            let active: Vec<usize> = (0..n)
                .filter(|&v| {
                    state.find(v) == v && state.parity[v] % 2 == 1 && !state.has_boundary[v]
                })
                .collect();
            if active.is_empty() {
                return;
            }
            let mut newly_grown: Vec<u32> = Vec::new();
            for root in active {
                // Re-fetch root (it may have been merged earlier this pass).
                let root = state.find(root);
                if state.parity[root].is_multiple_of(2) || state.has_boundary[root] {
                    continue;
                }
                let edges = std::mem::take(&mut state.frontier[root]);
                let mut keep = Vec::with_capacity(edges.len());
                for &ei in &edges {
                    if state.grown[ei as usize] {
                        continue;
                    }
                    state.support[ei as usize] += 1;
                    if state.support[ei as usize] >= self.lengths[ei as usize] {
                        state.grown[ei as usize] = true;
                        newly_grown.push(ei);
                    } else {
                        keep.push(ei);
                    }
                }
                let root_now = state.find(root);
                state.frontier[root_now].extend(keep);
            }
            for ei in newly_grown {
                let e = &self.graph.edges()[ei as usize];
                let ru = state.find(e.u as usize);
                match e.v {
                    Some(v) => {
                        let rv = state.find(v as usize);
                        // Expand the frontier of whichever side is new.
                        for node in [e.u as usize, v as usize] {
                            let r = state.find(node);
                            if !state.visited[node] {
                                state.visited[node] = true;
                                let extra: Vec<u32> = self.adjacency[node]
                                    .iter()
                                    .copied()
                                    .filter(|&x| !state.grown[x as usize])
                                    .collect();
                                state.frontier[r].extend(extra);
                            }
                        }
                        if ru != rv {
                            state.union(ru, rv);
                        }
                    }
                    None => {
                        state.has_boundary[ru] = true;
                    }
                }
            }
        }
    }

    /// Peeling: build a spanning forest of grown edges inside each cluster
    /// and discharge defects toward boundary-rooted trees.
    fn peel(&self, state: &mut DecodeState, syndrome: &[bool]) -> u64 {
        let n = self.graph.num_nodes();
        let mut marked: Vec<bool> = syndrome.to_vec();
        let mut visited = vec![false; n];
        // parent_edge[v] = edge used to reach v in BFS.
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; n]; // (parent node or usize::MAX for boundary, edge)
        let mut order: Vec<usize> = Vec::new();
        let edges = self.graph.edges();

        // BFS seeded from boundary-grown edges first so defects can drain
        // into the boundary.
        let mut queue = std::collections::VecDeque::new();
        for (ei, e) in edges.iter().enumerate() {
            if state.grown[ei] && e.v.is_none() {
                let u = e.u as usize;
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = Some((usize::MAX, ei as u32));
                    queue.push_back(u);
                }
            }
        }
        // Then arbitrary roots for remaining cluster nodes.
        let mut roots: Vec<usize> = Vec::new();
        loop {
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &ei in &self.adjacency[u] {
                    if !state.grown[ei as usize] {
                        continue;
                    }
                    let e = &edges[ei as usize];
                    let Some(v) = e.v else { continue };
                    let other = if e.u as usize == u {
                        v as usize
                    } else {
                        e.u as usize
                    };
                    if !visited[other] {
                        visited[other] = true;
                        parent[other] = Some((u, ei));
                        queue.push_back(other);
                    }
                }
            }
            if let Some(seed) = (0..n).find(|&v| !visited[v] && marked[v]) {
                visited[seed] = true;
                roots.push(seed);
                queue.push_back(seed);
            } else {
                break;
            }
        }

        let mut obs = 0u64;
        for &u in order.iter().rev() {
            if !marked[u] {
                continue;
            }
            let Some((p, ei)) = parent[u] else {
                // A marked arbitrary root: parity leak (should not happen on
                // valid even-parity clusters); leave undecoded.
                continue;
            };
            obs ^= edges[ei as usize].obs_mask;
            marked[u] = false;
            if p != usize::MAX {
                marked[p] = !marked[p];
            }
        }
        obs
    }
}

#[derive(Clone, Debug)]
struct DecodeState {
    parent: Vec<u32>,
    parity: Vec<u32>,
    has_boundary: Vec<bool>,
    defect: Vec<bool>,
    visited: Vec<bool>,
    frontier: Vec<Vec<u32>>,
    support: Vec<u32>,
    grown: Vec<bool>,
}

impl DecodeState {
    fn new(n: usize, m: usize) -> Self {
        DecodeState {
            parent: (0..n as u32).collect(),
            parity: vec![0; n],
            has_boundary: vec![false; n],
            defect: vec![false; n],
            visited: vec![false; n],
            frontier: vec![Vec::new(); n],
            support: vec![0; m],
            grown: vec![false; m],
        }
    }

    fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = v;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Merge smaller frontier into larger.
        let (big, small) = if self.frontier[ra].len() >= self.frontier[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        let moved = std::mem::take(&mut self.frontier[small]);
        self.frontier[big].extend(moved);
        self.parity[big] += self.parity[small];
        self.has_boundary[big] |= self.has_boundary[small];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::graph::MatchingGraph;

    /// Repetition-code strip: d data qubits, d−1 detectors, boundaries at
    /// both ends; the left boundary edge crosses the logical.
    fn strip(d: usize, p: f64) -> MatchingGraph {
        let mut g = MatchingGraph::new(d - 1);
        g.add_edge(0, None, p, 1);
        for i in 0..d - 2 {
            g.add_edge(i as u32, Some(i as u32 + 1), p, 0);
        }
        g.add_edge(d as u32 - 2, None, p, 0);
        g
    }

    /// Applies physical errors on a strip and returns (syndrome, true obs).
    fn apply_errors(d: usize, errs: &[usize]) -> (Vec<bool>, u64) {
        // Edge i connects detectors (i-1, i); edge 0 and edge d-1 are
        // boundary edges. Error on edge i fires its endpoints.
        let mut syn = vec![false; d - 1];
        let mut obs = 0u64;
        for &e in errs {
            if e == 0 {
                syn[0] ^= true;
                obs ^= 1;
            } else if e == d - 1 {
                syn[d - 2] ^= true;
            } else {
                syn[e - 1] ^= true;
                syn[e] ^= true;
            }
        }
        (syn, obs)
    }

    #[test]
    fn empty_syndrome_decodes_to_identity() {
        let g = strip(5, 0.1);
        let dec = UnionFindDecoder::new(&g);
        assert_eq!(dec.decode(&[false; 4]), 0);
    }

    #[test]
    fn single_errors_are_corrected() {
        let d = 7;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        for e in 0..d {
            let (syn, obs) = apply_errors(d, &[e]);
            assert_eq!(dec.decode(&syn), obs, "error on edge {e}");
        }
    }

    #[test]
    fn correctable_double_errors() {
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        for a in 0..d {
            for b in (a + 1)..d {
                let (syn, obs) = apply_errors(d, &[a, b]);
                let pred = dec.decode(&syn);
                // Prediction must produce the same syndrome class: for a
                // distance-9 strip any ≤4 errors are correctable.
                assert_eq!(pred, obs, "errors on edges {a},{b}");
            }
        }
    }

    #[test]
    fn uncorrectable_majority_flips_logical() {
        // 5 errors out of d=9 on the left side: decoder should prefer the
        // complementary (weight-4) correction and report a logical flip
        // relative to the actual error.
        let d = 9;
        let g = strip(d, 0.05);
        let dec = UnionFindDecoder::new(&g);
        let errs: Vec<usize> = (0..5).collect();
        let (syn, obs) = apply_errors(d, &errs);
        let pred = dec.decode(&syn);
        assert_ne!(pred, obs, "majority error should defeat the decoder");
    }

    #[test]
    fn weights_bias_toward_likelier_edges() {
        // Two-node graph: one defect pair connected either directly
        // (unlikely) or via two boundary edges (likely). Decoder must pick
        // the boundary route when it is cheaper.
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.0001, 1); // direct, expensive, flips obs
        g.add_edge(0, None, 0.2, 0);
        g.add_edge(1, None, 0.2, 0);
        let dec = UnionFindDecoder::new(&g);
        let pred = dec.decode(&[true, true]);
        assert_eq!(pred, 0, "should route both defects to the boundary");

        // Flip the economics: direct edge cheap.
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.2, 1);
        g.add_edge(0, None, 0.0001, 0);
        g.add_edge(1, None, 0.0001, 0);
        let dec = UnionFindDecoder::new(&g);
        assert_eq!(dec.decode(&[true, true]), 1, "should use the direct edge");
    }

    #[test]
    fn grid_graph_with_time_edges() {
        // 2 rounds × 3 detectors; time edges between rounds; a measurement
        // error fires (t, f) and (t+1, f) and must decode as a time edge
        // (no observable flip).
        let mut g = MatchingGraph::new(6);
        for t in 0..2u32 {
            let base = t * 3;
            g.add_edge(base, None, 0.01, 1);
            g.add_edge(base, Some(base + 1), 0.01, 0);
            g.add_edge(base + 1, Some(base + 2), 0.01, 0);
            g.add_edge(base + 2, None, 0.01, 0);
        }
        for f in 0..3u32 {
            g.add_edge(f, Some(f + 3), 0.01, 0);
        }
        let dec = UnionFindDecoder::new(&g);
        let mut syn = vec![false; 6];
        syn[1] = true;
        syn[4] = true;
        assert_eq!(dec.decode(&syn), 0);
    }
}
