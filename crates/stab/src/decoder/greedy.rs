//! Greedy minimum-weight matching decoder.
//!
//! A common accuracy baseline between union-find and full MWPM: compute
//! shortest-path distances between defects (Dijkstra over the matching
//! graph, boundary included), then greedily pair the closest defects. Used
//! in the decoder ablation benches; union-find remains the production
//! decoder (near-identical accuracy, much better scaling).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::decoder::graph::{CsrAdjacency, MatchingGraph};

/// A greedy-matching decoder prebuilt for one matching graph.
///
/// Stores the CSR adjacency and per-edge data it needs rather than a clone
/// of the whole [`MatchingGraph`].
#[derive(Clone, Debug)]
pub struct GreedyMatchingDecoder {
    num_nodes: usize,
    adjacency: CsrAdjacency,
    /// Per-edge (u, v-or-MAX, weight, obs_mask), mirroring the graph's
    /// edge order.
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    weights: Vec<f64>,
    edge_obs: Vec<u64>,
}

/// Boundary sentinel in `edge_v`.
const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq)]
struct QItem {
    dist: f64,
    node: usize,
}
impl Eq for QItem {}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist) // min-heap
    }
}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl GreedyMatchingDecoder {
    /// Builds the decoder.
    pub fn new(graph: &MatchingGraph) -> Self {
        GreedyMatchingDecoder {
            num_nodes: graph.num_nodes(),
            adjacency: graph.csr_adjacency(),
            edge_u: graph.edges().iter().map(|e| e.u).collect(),
            edge_v: graph
                .edges()
                .iter()
                .map(|e| e.v.unwrap_or(NO_NODE))
                .collect(),
            weights: graph.edges().iter().map(|e| e.weight()).collect(),
            edge_obs: graph.edges().iter().map(|e| e.obs_mask).collect(),
        }
    }

    /// Dijkstra from `src` over edge weights; returns per-node distance and
    /// the observable parity accumulated along the shortest path, plus the
    /// best distance/parity to the boundary.
    fn shortest_paths(&self, src: usize) -> (Vec<f64>, Vec<u64>, f64, u64) {
        let n = self.num_nodes;
        let mut dist = vec![f64::INFINITY; n];
        let mut obs = vec![0u64; n];
        let mut boundary = (f64::INFINITY, 0u64);
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(QItem {
            dist: 0.0,
            node: src,
        });
        while let Some(QItem { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            for &ei in self.adjacency.incident(node) {
                let ei = ei as usize;
                let w = self.weights[ei];
                let v = self.edge_v[ei];
                if v == NO_NODE {
                    let nd = d + w;
                    if nd < boundary.0 {
                        boundary = (nd, obs[node] ^ self.edge_obs[ei]);
                    }
                } else {
                    let other = if self.edge_u[ei] as usize == node {
                        v as usize
                    } else {
                        self.edge_u[ei] as usize
                    };
                    let nd = d + w;
                    if nd < dist[other] {
                        dist[other] = nd;
                        obs[other] = obs[node] ^ self.edge_obs[ei];
                        heap.push(QItem {
                            dist: nd,
                            node: other,
                        });
                    }
                }
            }
        }
        (dist, obs, boundary.0, boundary.1)
    }

    /// Decodes a syndrome, returning the predicted observable-flip mask.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length mismatches the graph.
    pub fn decode(&self, syndrome: &[bool]) -> u64 {
        assert_eq!(syndrome.len(), self.num_nodes, "syndrome length");
        let defects: Vec<usize> = syndrome
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect();
        if defects.is_empty() {
            return 0;
        }
        // Pairwise shortest paths among defects + each defect's boundary cost.
        let mut rows = Vec::with_capacity(defects.len());
        for &d in &defects {
            rows.push(self.shortest_paths(d));
        }
        // Candidate matches over defect pairs, each priced at the cheaper of
        // the direct route and the two-boundary route. Pricing pairs this way
        // (instead of offering bare boundary candidates) avoids the classic
        // greedy failure of grabbing one cheap boundary edge and forcing the
        // partner onto an expensive one.
        let mut cands: Vec<(f64, usize, usize, bool)> = Vec::new();
        for i in 0..defects.len() {
            let (dist, _, bd_i, _) = &rows[i];
            for (j, &dj) in defects.iter().enumerate().skip(i + 1) {
                let direct = dist[dj];
                let via_boundary = bd_i + rows[j].2;
                if direct <= via_boundary {
                    cands.push((direct, i, j, true));
                } else {
                    cands.push((via_boundary, i, j, false));
                }
            }
        }
        cands.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut matched = vec![false; defects.len()];
        let mut obs_total = 0u64;
        for (_, i, j, direct) in cands {
            if matched[i] || matched[j] {
                continue;
            }
            matched[i] = true;
            matched[j] = true;
            obs_total ^= if direct {
                rows[i].1[defects[j]]
            } else {
                rows[i].3 ^ rows[j].3
            };
        }
        // Odd leftover defects discharge into the boundary individually.
        for (i, m) in matched.iter().enumerate() {
            if !m {
                obs_total ^= rows[i].3;
            }
        }
        obs_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::unionfind::UnionFindDecoder;

    fn strip(d: usize, p: f64) -> MatchingGraph {
        let mut g = MatchingGraph::new(d - 1);
        g.add_edge(0, None, p, 1);
        for i in 0..d - 2 {
            g.add_edge(i as u32, Some(i as u32 + 1), p, 0);
        }
        g.add_edge(d as u32 - 2, None, p, 0);
        g
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let dec = GreedyMatchingDecoder::new(&strip(5, 0.1));
        assert_eq!(dec.decode(&[false; 4]), 0);
    }

    #[test]
    fn matches_union_find_on_correctable_patterns() {
        let d = 9;
        let g = strip(d, 0.05);
        let greedy = GreedyMatchingDecoder::new(&g);
        let uf = UnionFindDecoder::new(&g);
        // All single and double error patterns.
        for a in 0..d {
            for b in a..d {
                let mut syn = vec![false; d - 1];
                let flip = |e: usize, syn: &mut Vec<bool>| {
                    if e == 0 {
                        syn[0] = !syn[0];
                    } else if e == d - 1 {
                        syn[d - 2] = !syn[d - 2];
                    } else {
                        syn[e - 1] = !syn[e - 1];
                        syn[e] = !syn[e];
                    }
                };
                flip(a, &mut syn);
                if b != a {
                    flip(b, &mut syn);
                }
                assert_eq!(
                    greedy.decode(&syn),
                    uf.decode(&syn),
                    "disagreement on errors {a},{b}"
                );
            }
        }
    }

    #[test]
    fn prefers_cheap_boundary_routes() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.0001, 1); // expensive direct edge
        g.add_edge(0, None, 0.2, 0);
        g.add_edge(1, None, 0.2, 0);
        let dec = GreedyMatchingDecoder::new(&g);
        assert_eq!(dec.decode(&[true, true]), 0);
    }

    #[test]
    fn weighted_route_observable_tracking() {
        // A defect pair whose shortest path crosses the logical support.
        let mut g = MatchingGraph::new(3);
        g.add_edge(0, Some(1), 0.1, 1);
        g.add_edge(1, Some(2), 0.1, 0);
        g.add_edge(0, None, 0.0001, 0);
        g.add_edge(2, None, 0.0001, 0);
        let dec = GreedyMatchingDecoder::new(&g);
        // Adjacent defects (0,1): direct edge cheaper than two boundaries?
        // w(0.1) ~ 2.2 each; boundary w(1e-4) ~ 9.2 each: direct wins.
        assert_eq!(dec.decode(&[true, true, false]), 1);
    }

    #[test]
    fn surface_code_accuracy_close_to_union_find() {
        use crate::codes::{SurfaceMemory, SurfaceNoise};
        use crate::detector::sample_detectors;
        let mem = SurfaceMemory::new(3, 3, SurfaceNoise::default());
        let circuit = mem.circuit();
        let graph = mem.matching_graph();
        let greedy = GreedyMatchingDecoder::new(&graph);
        let uf = UnionFindDecoder::new(&graph);
        let shots = 3_000;
        let samples = sample_detectors(&circuit, shots, 31);
        let n_det = circuit.num_detectors();
        let mut fail_greedy = 0;
        let mut fail_uf = 0;
        let mut syn = vec![false; n_det];
        for shot in 0..shots {
            for (i, s) in syn.iter_mut().enumerate() {
                *s = samples.detectors.get(i, shot);
            }
            let actual = samples.observables.get(0, shot);
            if (greedy.decode(&syn) & 1 == 1) != actual {
                fail_greedy += 1;
            }
            if (uf.decode(&syn) & 1 == 1) != actual {
                fail_uf += 1;
            }
        }
        let rg = fail_greedy as f64 / shots as f64;
        let ru = fail_uf as f64 / shots as f64;
        assert!(
            (rg - ru).abs() < 0.03,
            "greedy {rg} vs union-find {ru} should be comparable"
        );
    }
}
