//! Space-time matching graphs for graphlike decoding.
//!
//! Each node is a detector; each edge is an independent error mechanism that
//! flips its one or two endpoint detectors and possibly a set of logical
//! observables. Boundary edges have a single endpoint.

use serde::{Deserialize, Serialize};

/// An error mechanism connecting one or two detectors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint (detector index).
    pub u: u32,
    /// Second endpoint, or `None` for a boundary edge.
    pub v: Option<u32>,
    /// Error probability of the mechanism.
    pub p: f64,
    /// Bitmask of logical observables flipped by this mechanism.
    pub obs_mask: u64,
}

impl Edge {
    /// Matching weight `ln((1−p)/p)`, floored at a small positive value.
    pub fn weight(&self) -> f64 {
        let p = self.p.clamp(1e-12, 0.5 - 1e-12);
        ((1.0 - p) / p).ln()
    }
}

/// A weighted matching graph over detectors.
///
/// # Examples
///
/// ```
/// use hetarch_stab::decoder::graph::MatchingGraph;
///
/// let mut g = MatchingGraph::new(2);
/// g.add_edge(0, Some(1), 0.01, 0);
/// g.add_edge(0, None, 0.02, 1);
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.edges().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchingGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl MatchingGraph {
    /// Creates an empty graph over `num_nodes` detectors.
    pub fn new(num_nodes: usize) -> Self {
        MatchingGraph {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of detector nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds an error mechanism. If an edge with the same endpoints and
    /// observable mask already exists, the probabilities are combined as
    /// independent events (`p ← p(1−q) + q(1−p)`).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `p ∉ [0, 1]`.
    pub fn add_edge(&mut self, u: u32, v: Option<u32>, p: f64, obs_mask: u64) {
        assert!((u as usize) < self.num_nodes, "endpoint {u} out of range");
        if let Some(v) = v {
            assert!((v as usize) < self.num_nodes, "endpoint {v} out of range");
            assert_ne!(u, v, "self-loop edges are not allowed");
        }
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        if p == 0.0 {
            return;
        }
        let (u, v) = match v {
            Some(v) if v < u => (v, Some(u)),
            other => (u, other),
        };
        if let Some(e) = self
            .edges
            .iter_mut()
            .find(|e| e.u == u && e.v == v && e.obs_mask == obs_mask)
        {
            e.p = e.p * (1.0 - p) + p * (1.0 - e.p);
        } else {
            self.edges.push(Edge { u, v, p, obs_mask });
        }
    }

    /// Adjacency list: for each node, the indices of incident edges.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.u as usize].push(i as u32);
            if let Some(v) = e.v {
                adj[v as usize].push(i as u32);
            }
        }
        adj
    }

    /// Compressed-sparse-row adjacency: one flat indices slice plus per-node
    /// offsets. Per-node entries keep the same ascending-edge-index order as
    /// [`MatchingGraph::adjacency`].
    pub fn csr_adjacency(&self) -> CsrAdjacency {
        let mut offsets = vec![0u32; self.num_nodes + 1];
        for e in &self.edges {
            offsets[e.u as usize + 1] += 1;
            if let Some(v) = e.v {
                offsets[v as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut indices = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        for (i, e) in self.edges.iter().enumerate() {
            indices[cursor[e.u as usize] as usize] = i as u32;
            cursor[e.u as usize] += 1;
            if let Some(v) = e.v {
                indices[cursor[v as usize] as usize] = i as u32;
                cursor[v as usize] += 1;
            }
        }
        CsrAdjacency { offsets, indices }
    }
}

/// Flattened adjacency (offsets + one indices slice): the allocation-free
/// form consumed by the decoders. Entry order per node matches
/// [`MatchingGraph::adjacency`] exactly, which the bit-identity contract of
/// the union-find scratch decoder depends on (DESIGN.md §5k).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    indices: Vec<u32>,
}

impl CsrAdjacency {
    /// Incident edge indices of node `v`, in ascending edge order.
    #[inline]
    pub fn incident(&self, v: usize) -> &[u32] {
        &self.indices[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of (node, edge) incidences — the length of the flat
    /// indices slice.
    pub fn num_incidences(&self) -> usize {
        self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_combine_probabilities() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(1, Some(0), 0.1, 0); // same edge, endpoints normalized
        assert_eq!(g.edges().len(), 1);
        let p = g.edges()[0].p;
        assert!((p - 0.18).abs() < 1e-12);
    }

    #[test]
    fn different_observables_stay_separate() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(0, Some(1), 0.1, 1);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn weight_is_monotone_in_probability() {
        let e1 = Edge {
            u: 0,
            v: None,
            p: 0.01,
            obs_mask: 0,
        };
        let e2 = Edge {
            u: 0,
            v: None,
            p: 0.1,
            obs_mask: 0,
        };
        assert!(e1.weight() > e2.weight());
    }

    #[test]
    fn zero_probability_edges_elided() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.0, 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn adjacency_includes_boundary_edges_once() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(0, None, 0.2, 0);
        let adj = g.adjacency();
        assert_eq!(adj[0].len(), 2);
        assert_eq!(adj[1].len(), 1);
    }

    #[test]
    fn csr_matches_nested_adjacency() {
        let mut g = MatchingGraph::new(5);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(1, Some(2), 0.1, 1);
        g.add_edge(0, None, 0.2, 0);
        g.add_edge(3, Some(1), 0.05, 0);
        g.add_edge(4, None, 0.3, 1);
        let nested = g.adjacency();
        let csr = g.csr_adjacency();
        assert_eq!(csr.num_nodes(), 5);
        let mut total = 0;
        for (v, row) in nested.iter().enumerate() {
            assert_eq!(csr.incident(v), row.as_slice(), "node {v}");
            total += row.len();
        }
        assert_eq!(csr.num_incidences(), total);
    }
}
