//! Space-time matching graphs for graphlike decoding.
//!
//! Each node is a detector; each edge is an independent error mechanism that
//! flips its one or two endpoint detectors and possibly a set of logical
//! observables. Boundary edges have a single endpoint.

use serde::{Deserialize, Serialize};

/// An error mechanism connecting one or two detectors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint (detector index).
    pub u: u32,
    /// Second endpoint, or `None` for a boundary edge.
    pub v: Option<u32>,
    /// Error probability of the mechanism.
    pub p: f64,
    /// Bitmask of logical observables flipped by this mechanism.
    pub obs_mask: u64,
}

impl Edge {
    /// Matching weight `ln((1−p)/p)`, floored at a small positive value.
    pub fn weight(&self) -> f64 {
        let p = self.p.clamp(1e-12, 0.5 - 1e-12);
        ((1.0 - p) / p).ln()
    }
}

/// A weighted matching graph over detectors.
///
/// # Examples
///
/// ```
/// use hetarch_stab::decoder::graph::MatchingGraph;
///
/// let mut g = MatchingGraph::new(2);
/// g.add_edge(0, Some(1), 0.01, 0);
/// g.add_edge(0, None, 0.02, 1);
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.edges().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchingGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl MatchingGraph {
    /// Creates an empty graph over `num_nodes` detectors.
    pub fn new(num_nodes: usize) -> Self {
        MatchingGraph {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of detector nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds an error mechanism. If an edge with the same endpoints and
    /// observable mask already exists, the probabilities are combined as
    /// independent events (`p ← p(1−q) + q(1−p)`).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `p ∉ [0, 1]`.
    pub fn add_edge(&mut self, u: u32, v: Option<u32>, p: f64, obs_mask: u64) {
        assert!((u as usize) < self.num_nodes, "endpoint {u} out of range");
        if let Some(v) = v {
            assert!((v as usize) < self.num_nodes, "endpoint {v} out of range");
            assert_ne!(u, v, "self-loop edges are not allowed");
        }
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        if p == 0.0 {
            return;
        }
        let (u, v) = match v {
            Some(v) if v < u => (v, Some(u)),
            other => (u, other),
        };
        if let Some(e) = self
            .edges
            .iter_mut()
            .find(|e| e.u == u && e.v == v && e.obs_mask == obs_mask)
        {
            e.p = e.p * (1.0 - p) + p * (1.0 - e.p);
        } else {
            self.edges.push(Edge { u, v, p, obs_mask });
        }
    }

    /// Adjacency list: for each node, the indices of incident edges.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.u as usize].push(i as u32);
            if let Some(v) = e.v {
                adj[v as usize].push(i as u32);
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_combine_probabilities() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(1, Some(0), 0.1, 0); // same edge, endpoints normalized
        assert_eq!(g.edges().len(), 1);
        let p = g.edges()[0].p;
        assert!((p - 0.18).abs() < 1e-12);
    }

    #[test]
    fn different_observables_stay_separate() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(0, Some(1), 0.1, 1);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn weight_is_monotone_in_probability() {
        let e1 = Edge {
            u: 0,
            v: None,
            p: 0.01,
            obs_mask: 0,
        };
        let e2 = Edge {
            u: 0,
            v: None,
            p: 0.1,
            obs_mask: 0,
        };
        assert!(e1.weight() > e2.weight());
    }

    #[test]
    fn zero_probability_edges_elided() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.0, 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn adjacency_includes_boundary_edges_once() {
        let mut g = MatchingGraph::new(2);
        g.add_edge(0, Some(1), 0.1, 0);
        g.add_edge(0, None, 0.2, 0);
        let adj = g.adjacency();
        assert_eq!(adj[0].len(), 2);
        assert_eq!(adj[1].len(), 1);
    }
}
