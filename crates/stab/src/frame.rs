//! Batched Pauli-frame Monte-Carlo sampler.
//!
//! The frame sampler is the scalability core of the stabilizer substrate
//! (the role Stim's frame simulator plays in the paper's evaluation): instead
//! of simulating quantum states, it tracks only the difference (a Pauli
//! "frame") between each noisy shot and the noiseless reference execution.
//! Frames propagate through Clifford gates with bit operations, 64 shots per
//! machine word.
//!
//! Measurement record bits are reported as *flips* relative to the reference
//! sample produced by the tableau simulator; detectors and observables are
//! assembled from those flips by [`crate::detector`].

use hetarch_exec::rare::{enumerate_configs, ConditionalSampler, FaultConfig, WeightPrior};
use hetarch_exec::{shard_seed, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bits::BitTable;
use crate::circuit::{Circuit, Gate1, Gate2, Instruction};

/// Shots per shard of a sharded [`FrameSampler::sample`] run. Word-aligned
/// (a multiple of 64) so shard outputs splice into the merged table by whole
/// words; fixed, so shard boundaries never depend on the worker count.
pub const SHARD_SHOTS: usize = 4096;

/// Batched Pauli frames for `shots` parallel Monte-Carlo executions.
#[derive(Clone, Debug)]
pub struct FrameSampler {
    num_qubits: usize,
    shots: usize,
    words: usize,
    /// X-frame bits, `[qubit][word]`.
    x: Vec<u64>,
    /// Z-frame bits.
    z: Vec<u64>,
    rng: StdRng,
}

/// Measurement-flip output of a frame-sampled circuit execution.
#[derive(Clone, Debug)]
pub struct FrameResult {
    /// `num_measurements × shots` flip bits relative to the reference sample.
    pub meas_flips: BitTable,
}

impl FrameSampler {
    /// Creates a sampler for `num_qubits` qubits and `shots` parallel shots.
    pub fn new(num_qubits: usize, shots: usize, seed: u64) -> Self {
        assert!(shots > 0, "need at least one shot");
        let words = shots.div_ceil(64);
        FrameSampler {
            num_qubits,
            shots,
            words,
            x: vec![0; num_qubits * words],
            z: vec![0; num_qubits * words],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of parallel shots.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Samples `shots` executions of `circuit`, sharded across `pool`.
    ///
    /// Shots are split into word-aligned shards of [`SHARD_SHOTS`]; shard
    /// `i` runs an independent sampler seeded with
    /// `hetarch_exec::shard_seed(seed, i)` and the per-shard flip tables are
    /// spliced back in shard order. Shard boundaries and seeds depend only
    /// on `(shots, seed)`, so the result is **bit-identical for every worker
    /// count** (but differs from a monolithic [`FrameSampler::run`] with the
    /// same seed, which consumes one continuous RNG stream).
    ///
    /// `shots == 0` returns an empty flip table.
    pub fn sample(circuit: &Circuit, shots: usize, seed: u64, pool: &WorkerPool) -> FrameResult {
        let num_qubits = circuit.num_qubits() as usize;
        let mut meas_flips = BitTable::new(circuit.num_measurements(), shots);
        let parts = pool.run_shards(shots, SHARD_SHOTS, seed, |shard| {
            let mut sampler = FrameSampler::new(num_qubits.max(1), shard.len, shard.seed);
            sampler.run(circuit).meas_flips
        });
        for (shard, part) in parts.iter().enumerate() {
            meas_flips.splice_shots(part, shard * SHARD_SHOTS);
        }
        FrameResult { meas_flips }
    }

    /// Runs `circuit`, returning measurement flips per shot.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the sampler has.
    pub fn run(&mut self, circuit: &Circuit) -> FrameResult {
        assert!(
            circuit.num_qubits() as usize <= self.num_qubits,
            "circuit uses {} qubits, sampler has {}",
            circuit.num_qubits(),
            self.num_qubits
        );
        let mut meas_flips = BitTable::new(circuit.num_measurements(), self.shots);
        let mut next_meas = 0usize;
        for inst in circuit.instructions() {
            self.apply_instruction(inst, &mut meas_flips, &mut next_meas);
        }
        debug_assert_eq!(next_meas, circuit.num_measurements());
        FrameResult { meas_flips }
    }

    fn apply_instruction(
        &mut self,
        inst: &Instruction,
        meas_flips: &mut BitTable,
        next_meas: &mut usize,
    ) {
        match inst {
            Instruction::Gate1(g, qs) => {
                for &q in qs {
                    self.gate1(*g, q as usize);
                }
            }
            Instruction::Gate2(g, pairs) => {
                for &(a, b) in pairs {
                    self.gate2(*g, a as usize, b as usize);
                }
            }
            Instruction::Measure { targets, flip } => {
                for &q in targets {
                    self.record_measurement(q as usize, *flip, meas_flips, next_meas);
                    self.randomize_z(q as usize);
                }
            }
            Instruction::MeasureReset { targets, flip } => {
                for &q in targets {
                    self.record_measurement(q as usize, *flip, meas_flips, next_meas);
                    self.clear_frames(q as usize);
                }
            }
            Instruction::Reset(qs) => {
                for &q in qs {
                    self.clear_frames(q as usize);
                }
            }
            Instruction::PauliNoise(err, qs) => {
                for &q in qs {
                    self.pauli_noise(q as usize, err.px, err.py, err.pz);
                }
            }
            Instruction::Depolarize1(p, qs) => {
                let third = p / 3.0;
                for &q in qs {
                    self.pauli_noise(q as usize, third, third, third);
                }
            }
            Instruction::Depolarize2(p, pairs) => {
                for &(a, b) in pairs {
                    self.depolarize2(a as usize, b as usize, *p);
                }
            }
            Instruction::Detector(_) | Instruction::Observable(_, _) | Instruction::Tick => {}
        }
    }

    #[inline]
    fn xrow(&mut self, q: usize) -> &mut [u64] {
        &mut self.x[q * self.words..(q + 1) * self.words]
    }

    #[inline]
    fn zrow(&mut self, q: usize) -> &mut [u64] {
        &mut self.z[q * self.words..(q + 1) * self.words]
    }

    fn gate1(&mut self, g: Gate1, q: usize) {
        match g {
            Gate1::H => {
                // X <-> Z.
                let base = q * self.words;
                for w in 0..self.words {
                    std::mem::swap(&mut self.x[base + w], &mut self.z[base + w]);
                }
            }
            // S and S† both map X -> ±Y; frames ignore signs.
            Gate1::S | Gate1::SDag => {
                let base = q * self.words;
                for w in 0..self.words {
                    self.z[base + w] ^= self.x[base + w];
                }
            }
            // Paulis commute with frames up to phase.
            Gate1::X | Gate1::Y | Gate1::Z => {}
        }
    }

    fn gate2(&mut self, g: Gate2, a: usize, b: usize) {
        let (ba, bb) = (a * self.words, b * self.words);
        match g {
            Gate2::Cx => {
                // X_c -> X_c X_t ; Z_t -> Z_c Z_t.
                for w in 0..self.words {
                    self.x[bb + w] ^= self.x[ba + w];
                    self.z[ba + w] ^= self.z[bb + w];
                }
            }
            Gate2::Cz => {
                // X_a -> X_a Z_b ; X_b -> Z_a X_b.
                for w in 0..self.words {
                    self.z[bb + w] ^= self.x[ba + w];
                    self.z[ba + w] ^= self.x[bb + w];
                }
            }
            Gate2::Swap => {
                for w in 0..self.words {
                    self.x.swap(ba + w, bb + w);
                    self.z.swap(ba + w, bb + w);
                }
            }
        }
    }

    fn record_measurement(
        &mut self,
        q: usize,
        flip: f64,
        meas_flips: &mut BitTable,
        next_meas: &mut usize,
    ) {
        let row = *next_meas;
        *next_meas += 1;
        let xr = self.x[q * self.words..(q + 1) * self.words].to_vec();
        meas_flips.xor_row(row, &xr);
        if flip > 0.0 {
            let hits = self.sample_hits(flip);
            for shot in hits {
                let v = meas_flips.get(row, shot);
                meas_flips.set(row, shot, !v);
            }
        }
    }

    /// After a Z measurement the Z frame on the measured qubit is
    /// unobservable; randomize it so later anticommuting observations have
    /// correct statistics (Stim's convention).
    fn randomize_z(&mut self, q: usize) {
        let shots = self.shots;
        let words = self.words;
        // Draw all words first to avoid borrowing `self.rng` while `zrow` is borrowed.
        let mut rand_words = vec![0u64; words];
        for (w, rw) in rand_words.iter_mut().enumerate() {
            let remaining = shots - (w * 64).min(shots);
            let mask = if remaining >= 64 {
                u64::MAX
            } else if remaining == 0 {
                0
            } else {
                (1u64 << remaining) - 1
            };
            *rw = self.rng.gen::<u64>() & mask;
        }
        let zr = self.zrow(q);
        for (zw, rw) in zr.iter_mut().zip(rand_words) {
            *zw ^= rw;
        }
    }

    fn clear_frames(&mut self, q: usize) {
        self.xrow(q).fill(0);
        self.zrow(q).fill(0);
    }

    /// Samples shot indices hit by an event of probability `p`, using
    /// geometric skipping (efficient for the small `p` regime of QEC noise).
    fn sample_hits(&mut self, p: f64) -> Vec<usize> {
        debug_assert!((0.0..=1.0).contains(&p));
        let mut hits = Vec::new();
        if p <= 0.0 {
            return hits;
        }
        if p >= 1.0 {
            hits.extend(0..self.shots);
            return hits;
        }
        let ln_q = (1.0 - p).ln();
        let mut idx: i64 = -1;
        loop {
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u.ln() / ln_q).floor() as i64 + 1;
            idx += skip.max(1);
            if idx as usize >= self.shots {
                break;
            }
            hits.push(idx as usize);
        }
        hits
    }

    fn pauli_noise(&mut self, q: usize, px: f64, py: f64, pz: f64) {
        let total = px + py + pz;
        if total <= 0.0 {
            return;
        }
        let hits = self.sample_hits(total);
        for shot in hits {
            let r: f64 = self.rng.gen_range(0.0..total);
            let (fx, fz) = if r < px {
                (true, false)
            } else if r < px + py {
                (true, true)
            } else {
                (false, true)
            };
            let (w, b) = (shot / 64, 1u64 << (shot % 64));
            if fx {
                self.x[q * self.words + w] ^= b;
            }
            if fz {
                self.z[q * self.words + w] ^= b;
            }
        }
    }

    fn depolarize2(&mut self, a: usize, b: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        let hits = self.sample_hits(p);
        for shot in hits {
            // Pick one of the 15 non-identity pair Paulis uniformly.
            let k = self.rng.gen_range(1..16u8);
            let (pa, pb) = (k >> 2, k & 3);
            let (w, bit) = (shot / 64, 1u64 << (shot % 64));
            // Encoding: 0 = I, 1 = X, 2 = Z, 3 = Y.
            if pa == 1 || pa == 3 {
                self.x[a * self.words + w] ^= bit;
            }
            if pa == 2 || pa == 3 {
                self.z[a * self.words + w] ^= bit;
            }
            if pb == 1 || pb == 3 {
                self.x[b * self.words + w] ^= bit;
            }
            if pb == 2 || pb == 3 {
                self.z[b * self.words + w] ^= bit;
            }
        }
    }
}

/// One fault mechanism of a circuit, in [`Circuit::num_noise_sites`] order.
#[derive(Clone, Copy, Debug, PartialEq)]
enum SiteKind {
    /// A stochastic Pauli site (also covers `Depolarize1` with uniform
    /// thirds). Variants: 0 = X, 1 = Y, 2 = Z.
    Pauli {
        /// X/Y/Z probabilities (not normalized; their sum is the trigger
        /// probability).
        px: f64,
        py: f64,
        pz: f64,
    },
    /// A two-qubit depolarizing site. Variants `v ∈ 0..15` encode the
    /// non-identity pair Pauli `k = v + 1` (`pa = k >> 2`, `pb = k & 3`,
    /// with 0 = I, 1 = X, 2 = Z, 3 = Y per factor).
    Dep2,
    /// A classical measurement-record flip (single variant).
    MeasFlip,
}

/// The fault-mechanism decomposition of a circuit's noise: one site per
/// entry of [`Circuit::num_noise_sites`], each with its trigger probability
/// and its conditional variant distribution.
///
/// This is the bridge between a [`Circuit`] and the weight-stratified
/// estimator in [`hetarch_exec::rare`]: the model's [`FaultModel::prior`]
/// is the exact Poisson-binomial weight distribution, and
/// [`sample_at_weight`] / [`enumerate_at_weight`] generate frames
/// conditioned on exactly `w` triggered sites.
#[derive(Clone, Debug)]
pub struct FaultModel {
    kinds: Vec<SiteKind>,
    trigger: Vec<f64>,
}

impl FaultModel {
    /// Decomposes `circuit`'s noise annotations into fault sites, in the
    /// exact order [`Circuit::num_noise_sites`] counts them.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut kinds = Vec::new();
        let mut trigger = Vec::new();
        for inst in circuit.instructions() {
            match inst {
                Instruction::PauliNoise(err, qs) => {
                    for _ in qs {
                        kinds.push(SiteKind::Pauli {
                            px: err.px,
                            py: err.py,
                            pz: err.pz,
                        });
                        trigger.push(err.total());
                    }
                }
                Instruction::Depolarize1(p, qs) => {
                    let third = p / 3.0;
                    for _ in qs {
                        kinds.push(SiteKind::Pauli {
                            px: third,
                            py: third,
                            pz: third,
                        });
                        trigger.push(*p);
                    }
                }
                Instruction::Depolarize2(p, pairs) => {
                    for _ in pairs {
                        kinds.push(SiteKind::Dep2);
                        trigger.push(*p);
                    }
                }
                Instruction::Measure { targets, flip }
                | Instruction::MeasureReset { targets, flip }
                    if *flip > 0.0 =>
                {
                    for _ in targets {
                        kinds.push(SiteKind::MeasFlip);
                        trigger.push(*flip);
                    }
                }
                _ => {}
            }
        }
        debug_assert_eq!(kinds.len(), circuit.num_noise_sites());
        FaultModel { kinds, trigger }
    }

    /// Number of fault sites.
    pub fn num_sites(&self) -> usize {
        self.kinds.len()
    }

    /// Per-site trigger probabilities, in site order.
    pub fn trigger_probs(&self) -> &[f64] {
        &self.trigger
    }

    /// The exact Poisson-binomial prior over the total triggered-site
    /// weight.
    pub fn prior(&self) -> WeightPrior {
        WeightPrior::poisson_binomial(&self.trigger)
    }

    /// Number of fault variants at site `i`.
    pub fn variant_count(&self, i: usize) -> usize {
        match self.kinds[i] {
            SiteKind::Pauli { .. } => 3,
            SiteKind::Dep2 => 15,
            SiteKind::MeasFlip => 1,
        }
    }

    /// Conditional probability of variant `v` at site `i`, given the site
    /// triggered.
    pub fn variant_weight(&self, i: usize, v: usize) -> f64 {
        match self.kinds[i] {
            SiteKind::Pauli { px, py, pz } => {
                let total = px + py + pz;
                if total <= 0.0 {
                    return 0.0;
                }
                [px, py, pz][v] / total
            }
            SiteKind::Dep2 => 1.0 / 15.0,
            SiteKind::MeasFlip => 1.0,
        }
    }

    /// Draws a variant for a triggered site (the same conditional
    /// distribution [`FaultModel::variant_weight`] describes).
    fn sample_variant(&self, i: usize, rng: &mut StdRng) -> u8 {
        match self.kinds[i] {
            SiteKind::Pauli { px, py, pz } => {
                let r: f64 = rng.gen::<f64>() * (px + py + pz);
                if r < px {
                    0
                } else if r < px + py {
                    1
                } else {
                    2
                }
            }
            SiteKind::Dep2 => rng.gen_range(0..15u8),
            SiteKind::MeasFlip => 0,
        }
    }

    /// Enumerates all weight-`weight` fault configurations, or `None` when
    /// there are more than `max_configs` (fall back to
    /// [`sample_at_weight`]).
    pub fn enumerate(&self, weight: usize, max_configs: u64) -> Option<Vec<FaultConfig>> {
        enumerate_configs(
            &self.trigger,
            weight,
            max_configs,
            &|i| self.variant_count(i),
            &|i, v| self.variant_weight(i, v),
        )
    }
}

impl FrameSampler {
    /// Runs `circuit` with its stochastic noise suppressed and the given
    /// fault assignment applied instead: `site_hits[site]` lists the
    /// `(shot, variant)` pairs where that fault site fires deterministically.
    ///
    /// Sites are indexed in [`FaultModel`] order (one per
    /// [`Circuit::num_noise_sites`] entry).
    pub fn run_with_faults(
        &mut self,
        circuit: &Circuit,
        site_hits: &[Vec<(u32, u8)>],
    ) -> FrameResult {
        assert_eq!(
            site_hits.len(),
            circuit.num_noise_sites(),
            "fault assignment does not match the circuit's noise sites"
        );
        assert!(
            circuit.num_qubits() as usize <= self.num_qubits,
            "circuit uses {} qubits, sampler has {}",
            circuit.num_qubits(),
            self.num_qubits
        );
        let mut meas_flips = BitTable::new(circuit.num_measurements(), self.shots);
        let mut next_meas = 0usize;
        let mut site = 0usize;
        for inst in circuit.instructions() {
            match inst {
                Instruction::PauliNoise(_, qs) | Instruction::Depolarize1(_, qs) => {
                    for &q in qs {
                        for &(shot, v) in &site_hits[site] {
                            self.apply_pauli_variant(q as usize, shot as usize, v);
                        }
                        site += 1;
                    }
                }
                Instruction::Depolarize2(_, pairs) => {
                    for &(a, b) in pairs {
                        for &(shot, v) in &site_hits[site] {
                            self.apply_dep2_variant(a as usize, b as usize, shot as usize, v);
                        }
                        site += 1;
                    }
                }
                Instruction::Measure { targets, flip } => {
                    for &q in targets {
                        self.record_measurement(q as usize, 0.0, &mut meas_flips, &mut next_meas);
                        if *flip > 0.0 {
                            for &(shot, _) in &site_hits[site] {
                                let row = next_meas - 1;
                                let v = meas_flips.get(row, shot as usize);
                                meas_flips.set(row, shot as usize, !v);
                            }
                            site += 1;
                        }
                        self.randomize_z(q as usize);
                    }
                }
                Instruction::MeasureReset { targets, flip } => {
                    for &q in targets {
                        self.record_measurement(q as usize, 0.0, &mut meas_flips, &mut next_meas);
                        if *flip > 0.0 {
                            for &(shot, _) in &site_hits[site] {
                                let row = next_meas - 1;
                                let v = meas_flips.get(row, shot as usize);
                                meas_flips.set(row, shot as usize, !v);
                            }
                            site += 1;
                        }
                        self.clear_frames(q as usize);
                    }
                }
                other => self.apply_instruction(other, &mut meas_flips, &mut next_meas),
            }
        }
        debug_assert_eq!(site, site_hits.len());
        debug_assert_eq!(next_meas, circuit.num_measurements());
        FrameResult { meas_flips }
    }

    #[inline]
    fn apply_pauli_variant(&mut self, q: usize, shot: usize, v: u8) {
        let (w, b) = (shot / 64, 1u64 << (shot % 64));
        // 0 = X, 1 = Y, 2 = Z.
        if v == 0 || v == 1 {
            self.x[q * self.words + w] ^= b;
        }
        if v == 1 || v == 2 {
            self.z[q * self.words + w] ^= b;
        }
    }

    #[inline]
    fn apply_dep2_variant(&mut self, a: usize, b: usize, shot: usize, v: u8) {
        let k = v + 1;
        let (pa, pb) = (k >> 2, k & 3);
        let (w, bit) = (shot / 64, 1u64 << (shot % 64));
        // Per-factor encoding matches `depolarize2`: 0 = I, 1 = X, 2 = Z,
        // 3 = Y.
        if pa == 1 || pa == 3 {
            self.x[a * self.words + w] ^= bit;
        }
        if pa == 2 || pa == 3 {
            self.z[a * self.words + w] ^= bit;
        }
        if pb == 1 || pb == 3 {
            self.x[b * self.words + w] ^= bit;
        }
        if pb == 2 || pb == 3 {
            self.z[b * self.words + w] ^= bit;
        }
    }
}

/// Samples `shots` executions of `circuit` conditioned on **exactly
/// `weight` triggered fault sites** per shot, sharded across `pool`.
///
/// Each shard derives two private SplitMix64 streams from its
/// [`hetarch_exec::Shard::seed`] — one for drawing the conditioned fault
/// configurations (exact conditional subset sampling via
/// [`ConditionalSampler`], then per-site variants), one for the frame
/// run — so the result is **bit-identical for every worker count**, the
/// same contract as [`FrameSampler::sample`].
///
/// # Panics
///
/// Panics if no weight-`weight` configuration has positive probability
/// (the prior mass `P(W = weight)` is zero; callers should consult
/// [`FaultModel::prior`] first).
pub fn sample_at_weight(
    circuit: &Circuit,
    model: &FaultModel,
    weight: usize,
    shots: usize,
    seed: u64,
    pool: &WorkerPool,
) -> FrameResult {
    let sampler = ConditionalSampler::new(model.trigger_probs(), weight);
    assert!(
        sampler.is_feasible(),
        "no weight-{weight} fault configuration has positive probability \
         ({} sites)",
        model.num_sites()
    );
    let num_qubits = circuit.num_qubits() as usize;
    let mut meas_flips = BitTable::new(circuit.num_measurements(), shots);
    let parts = pool.run_shards(shots, SHARD_SHOTS, seed, |shard| {
        let mut rng = StdRng::seed_from_u64(shard_seed(shard.seed, 0));
        let mut site_hits: Vec<Vec<(u32, u8)>> = vec![Vec::new(); model.num_sites()];
        let mut subset = Vec::with_capacity(weight);
        for shot in 0..shard.len {
            sampler.sample_into(&mut || rng.gen::<f64>(), &mut subset);
            for &site in &subset {
                let v = model.sample_variant(site, &mut rng);
                site_hits[site].push((shot as u32, v));
            }
        }
        let mut fs = FrameSampler::new(num_qubits.max(1), shard.len, shard_seed(shard.seed, 1));
        fs.run_with_faults(circuit, &site_hits).meas_flips
    });
    for (shard, part) in parts.iter().enumerate() {
        meas_flips.splice_shots(part, shard * SHARD_SHOTS);
    }
    FrameResult { meas_flips }
}

/// Enumerates every weight-`weight` fault configuration of `circuit` and
/// runs them all in one deterministic batched frame pass (configuration
/// `i` occupies shot `i`). Returns `None` when the stratum has more than
/// `max_configs` configurations — fall back to [`sample_at_weight`].
///
/// The returned configuration weights are normalized conditional
/// probabilities (they sum to 1 within the stratum), so the stratum's
/// exact conditional failure probability is `Σ_i weight_i · fails_i`.
pub fn enumerate_at_weight(
    circuit: &Circuit,
    model: &FaultModel,
    weight: usize,
    max_configs: u64,
) -> Option<(Vec<FaultConfig>, FrameResult)> {
    let configs = model.enumerate(weight, max_configs)?;
    let shots = configs.len();
    if shots == 0 {
        let meas_flips = BitTable::new(circuit.num_measurements(), 0);
        return Some((configs, FrameResult { meas_flips }));
    }
    let mut site_hits: Vec<Vec<(u32, u8)>> = vec![Vec::new(); model.num_sites()];
    for (shot, config) in configs.iter().enumerate() {
        for &(site, v) in &config.sites {
            site_hits[site].push((shot as u32, v as u8));
        }
    }
    let num_qubits = circuit.num_qubits() as usize;
    let mut fs = FrameSampler::new(num_qubits.max(1), shots, 0);
    let result = fs.run_with_faults(circuit, &site_hits);
    Some((configs, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_circuit_has_no_flips() {
        let mut c = Circuit::new(3);
        c.h(&[0]);
        c.cx(&[(0, 1), (1, 2)]);
        c.measure(&[0, 1, 2], 0.0);
        let mut s = FrameSampler::new(3, 256, 1);
        let r = s.run(&c);
        for m in 0..3 {
            assert_eq!(r.meas_flips.count_ones(m), 0);
        }
    }

    #[test]
    fn x_error_flips_measurement_deterministically() {
        let mut c = Circuit::new(1);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 1.0,
                py: 0.0,
                pz: 0.0,
            },
            &[0],
        );
        c.measure(&[0], 0.0);
        let mut s = FrameSampler::new(1, 100, 2);
        let r = s.run(&c);
        assert_eq!(r.meas_flips.count_ones(0), 100);
    }

    #[test]
    fn z_error_does_not_affect_z_measurement() {
        let mut c = Circuit::new(1);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 0.0,
                py: 0.0,
                pz: 1.0,
            },
            &[0],
        );
        c.measure(&[0], 0.0);
        let mut s = FrameSampler::new(1, 64, 3);
        let r = s.run(&c);
        assert_eq!(r.meas_flips.count_ones(0), 0);
    }

    #[test]
    fn z_error_through_hadamard_flips() {
        let mut c = Circuit::new(1);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 0.0,
                py: 0.0,
                pz: 1.0,
            },
            &[0],
        );
        c.h(&[0]);
        c.measure(&[0], 0.0);
        let mut s = FrameSampler::new(1, 64, 3);
        let r = s.run(&c);
        assert_eq!(r.meas_flips.count_ones(0), 64);
    }

    #[test]
    fn cx_propagates_x_to_target() {
        let mut c = Circuit::new(2);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 1.0,
                py: 0.0,
                pz: 0.0,
            },
            &[0],
        );
        c.cx(&[(0, 1)]);
        c.measure(&[0, 1], 0.0);
        let mut s = FrameSampler::new(2, 64, 4);
        let r = s.run(&c);
        assert_eq!(r.meas_flips.count_ones(0), 64);
        assert_eq!(r.meas_flips.count_ones(1), 64);
    }

    #[test]
    fn reset_clears_error_frames() {
        let mut c = Circuit::new(1);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 1.0,
                py: 0.0,
                pz: 0.0,
            },
            &[0],
        );
        c.reset(&[0]);
        c.measure(&[0], 0.0);
        let mut s = FrameSampler::new(1, 64, 5);
        let r = s.run(&c);
        assert_eq!(r.meas_flips.count_ones(0), 0);
    }

    #[test]
    fn sharded_sample_is_worker_count_invariant() {
        let mut c = Circuit::new(2);
        c.depolarize1(0.1, &[0, 1]);
        c.cx(&[(0, 1)]);
        c.measure(&[0, 1], 0.02);
        // Spans three shards (two full, one partial, non-divisible by 64).
        let shots = 2 * SHARD_SHOTS + 100;
        let reference = FrameSampler::sample(&c, shots, 5, &WorkerPool::new(1));
        for workers in [2, 8] {
            let r = FrameSampler::sample(&c, shots, 5, &WorkerPool::new(workers));
            assert_eq!(r.meas_flips, reference.meas_flips, "workers {workers}");
        }
    }

    #[test]
    fn sharded_sample_statistics_match_probability() {
        let p = 0.07;
        let mut c = Circuit::new(1);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: p,
                py: 0.0,
                pz: 0.0,
            },
            &[0],
        );
        c.measure(&[0], 0.0);
        let shots = 200_000;
        let r = FrameSampler::sample(&c, shots, 6, &WorkerPool::new(4));
        let rate = r.meas_flips.count_ones(0) as f64 / shots as f64;
        assert!((rate - p).abs() < 0.004, "measured {rate}, expected {p}");
    }

    #[test]
    fn sharded_sample_zero_shots() {
        let mut c = Circuit::new(1);
        c.measure(&[0], 0.0);
        let r = FrameSampler::sample(&c, 0, 1, &WorkerPool::new(4));
        assert_eq!(r.meas_flips.shots(), 0);
        assert_eq!(r.meas_flips.count_ones(0), 0);
    }

    #[test]
    fn error_rate_statistics_match_probability() {
        let p = 0.07;
        let mut c = Circuit::new(1);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: p,
                py: 0.0,
                pz: 0.0,
            },
            &[0],
        );
        c.measure(&[0], 0.0);
        let shots = 200_000;
        let mut s = FrameSampler::new(1, shots, 6);
        let r = s.run(&c);
        let rate = r.meas_flips.count_ones(0) as f64 / shots as f64;
        assert!((rate - p).abs() < 0.004, "measured {rate}, expected {p}");
    }

    #[test]
    fn depolarize1_produces_two_thirds_flip_rate() {
        // X and Y flip a Z measurement; Z does not: flip rate = 2p/3.
        let p = 0.3;
        let mut c = Circuit::new(1);
        c.depolarize1(p, &[0]);
        c.measure(&[0], 0.0);
        let shots = 200_000;
        let mut s = FrameSampler::new(1, shots, 7);
        let r = s.run(&c);
        let rate = r.meas_flips.count_ones(0) as f64 / shots as f64;
        assert!((rate - 0.2).abs() < 0.006, "measured {rate}");
    }

    #[test]
    fn measurement_flip_probability_applies() {
        let mut c = Circuit::new(1);
        c.measure(&[0], 0.25);
        let shots = 100_000;
        let mut s = FrameSampler::new(1, shots, 8);
        let r = s.run(&c);
        let rate = r.meas_flips.count_ones(0) as f64 / shots as f64;
        assert!((rate - 0.25).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn depolarize2_marginal_rates() {
        // Each qubit sees a non-trivial Pauli in 12 of 15 cases; of those,
        // 8 of 15 flip a Z measurement (X or Y on that qubit).
        let p = 0.3;
        let mut c = Circuit::new(2);
        c.depolarize2(p, &[(0, 1)]);
        c.measure(&[0, 1], 0.0);
        let shots = 300_000;
        let mut s = FrameSampler::new(2, shots, 9);
        let r = s.run(&c);
        for m in 0..2 {
            let rate = r.meas_flips.count_ones(m) as f64 / shots as f64;
            let expect = p * 8.0 / 15.0;
            assert!(
                (rate - expect).abs() < 0.01,
                "qubit {m}: {rate} vs {expect}"
            );
        }
    }

    fn noisy_test_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 0.01,
                py: 0.002,
                pz: 0.005,
            },
            &[0, 1],
        );
        c.depolarize1(0.02, &[2]);
        c.cx(&[(0, 1)]);
        c.depolarize2(0.03, &[(1, 2)]);
        c.measure(&[0, 1, 2], 0.04);
        c
    }

    #[test]
    fn fault_model_matches_noise_site_accounting() {
        let c = noisy_test_circuit();
        let model = FaultModel::from_circuit(&c);
        assert_eq!(model.num_sites(), c.num_noise_sites());
        assert_eq!(model.num_sites(), 2 + 1 + 1 + 3);
        let probs = model.trigger_probs();
        assert!((probs[0] - 0.017).abs() < 1e-15);
        assert!((probs[2] - 0.02).abs() < 1e-15);
        assert!((probs[3] - 0.03).abs() < 1e-15);
        assert!((probs[4] - 0.04).abs() < 1e-15);
        // Variant distributions are normalized.
        for i in 0..model.num_sites() {
            let total: f64 = (0..model.variant_count(i))
                .map(|v| model.variant_weight(i, v))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "site {i} weights sum {total}");
        }
        // The prior matches the Poisson binomial over the trigger probs.
        let prior = model.prior();
        assert_eq!(prior.num_sites(), model.num_sites());
        let p0: f64 = probs.iter().map(|p| 1.0 - p).product();
        assert!((prior.pmf(0) - p0).abs() < 1e-14);
    }

    #[test]
    fn weight_one_sampling_always_applies_exactly_one_fault() {
        // A circuit where every fault flips a measurement: X-only noise on
        // measured qubits plus a record flip. Exactly one site fires per
        // shot, so exactly one measurement bit flips per shot.
        let mut c = Circuit::new(2);
        c.pauli_noise(
            crate::circuit::PauliErr {
                px: 0.001,
                py: 0.0,
                pz: 0.0,
            },
            &[0, 1],
        );
        c.measure(&[0, 1], 0.002);
        let model = FaultModel::from_circuit(&c);
        let shots = 2_000;
        let r = sample_at_weight(&c, &model, 1, shots, 17, &WorkerPool::new(2));
        let total_flips = r.meas_flips.count_ones(0) + r.meas_flips.count_ones(1);
        assert_eq!(total_flips, shots, "each shot must carry exactly one flip");
    }

    #[test]
    fn sample_at_weight_is_worker_count_invariant() {
        let c = noisy_test_circuit();
        let model = FaultModel::from_circuit(&c);
        let shots = SHARD_SHOTS + 333;
        let reference = sample_at_weight(&c, &model, 2, shots, 5, &WorkerPool::new(1));
        for workers in [2, 8] {
            let r = sample_at_weight(&c, &model, 2, shots, 5, &WorkerPool::new(workers));
            assert_eq!(r.meas_flips, reference.meas_flips, "workers {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "positive probability")]
    fn sample_at_weight_rejects_infeasible_weight() {
        let mut c = Circuit::new(1);
        c.depolarize1(0.01, &[0]);
        c.measure(&[0], 0.0);
        let model = FaultModel::from_circuit(&c);
        sample_at_weight(&c, &model, 2, 16, 1, &WorkerPool::new(1));
    }

    #[test]
    fn enumerate_at_weight_covers_every_configuration() {
        let c = noisy_test_circuit();
        let model = FaultModel::from_circuit(&c);
        // Weight 1: 3 Pauli sites × 3 + 15 (dep2) + 3 (meas flips)... the
        // py=0-free sites keep all three variants here, so count directly.
        let (configs, frames) = enumerate_at_weight(&c, &model, 1, 10_000).unwrap();
        let expect: usize = (0..model.num_sites())
            .map(|i| {
                (0..model.variant_count(i))
                    .filter(|&v| model.variant_weight(i, v) > 0.0)
                    .count()
            })
            .sum();
        assert_eq!(configs.len(), expect);
        assert_eq!(frames.meas_flips.shots(), configs.len());
        let total: f64 = configs.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Over-budget strata fall back to sampling.
        assert!(enumerate_at_weight(&c, &model, 2, 3).is_none());
    }

    #[test]
    fn forced_measurement_flip_toggles_record_bit() {
        let mut c = Circuit::new(1);
        c.measure(&[0], 0.5);
        let model = FaultModel::from_circuit(&c);
        let (configs, frames) = enumerate_at_weight(&c, &model, 1, 100).unwrap();
        assert_eq!(configs.len(), 1);
        assert!((configs[0].weight - 1.0).abs() < 1e-15);
        assert_eq!(frames.meas_flips.count_ones(0), 1);
    }
}
