//! Stabilizer circuits with circuit-level noise annotations.
//!
//! The instruction set mirrors the subset of Stim's language the HetArch
//! experiments need: Clifford gates, measurement/reset, stochastic Pauli
//! noise, and detector/observable annotations over absolute measurement
//! indices.

use serde::{Deserialize, Serialize};

/// Single-qubit Clifford gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate1 {
    /// Hadamard.
    H,
    /// Phase gate.
    S,
    /// Inverse phase gate.
    SDag,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// Two-qubit Clifford gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate2 {
    /// Controlled-X (first qubit is the control).
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP.
    Swap,
}

/// Independent X/Y/Z error probabilities (a stochastic Pauli channel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PauliErr {
    /// Probability of an X error.
    pub px: f64,
    /// Probability of a Y error.
    pub py: f64,
    /// Probability of a Z error.
    pub pz: f64,
}

impl PauliErr {
    /// Total error probability.
    pub fn total(&self) -> f64 {
        self.px + self.py + self.pz
    }
}

/// One circuit instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// A single-qubit gate applied to each listed qubit.
    Gate1(Gate1, Vec<u32>),
    /// A two-qubit gate applied to each listed pair.
    Gate2(Gate2, Vec<(u32, u32)>),
    /// Z-basis measurement of each listed qubit, appending one record bit
    /// per qubit; each recorded bit flips with probability `flip`.
    Measure {
        /// Measured qubits, in record order.
        targets: Vec<u32>,
        /// Classical readout flip probability.
        flip: f64,
    },
    /// Reset each listed qubit to `|0⟩`.
    Reset(Vec<u32>),
    /// Measure (with readout flip probability) then reset each qubit.
    MeasureReset {
        /// Measured-and-reset qubits, in record order.
        targets: Vec<u32>,
        /// Classical readout flip probability.
        flip: f64,
    },
    /// Stochastic Pauli noise applied independently to each listed qubit.
    PauliNoise(PauliErr, Vec<u32>),
    /// Single-qubit depolarizing noise (`p/3` each for X, Y, Z).
    Depolarize1(f64, Vec<u32>),
    /// Two-qubit depolarizing noise (`p/15` for each non-identity pair
    /// Pauli).
    Depolarize2(f64, Vec<(u32, u32)>),
    /// A detector: the XOR of the listed (absolute) measurement record
    /// indices, which must be deterministic under zero noise.
    Detector(Vec<usize>),
    /// Adds the listed measurement record indices to logical observable `k`.
    Observable(u32, Vec<usize>),
    /// A timing barrier (no semantic effect; keeps schedules readable).
    Tick,
}

/// A stabilizer circuit.
///
/// Build with the fluent methods; measurement-producing methods return the
/// absolute record indices so detectors can be declared without manual
/// bookkeeping.
///
/// # Examples
///
/// ```
/// use hetarch_stab::circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(&[0]);
/// c.cx(&[(0, 1)]);
/// c.depolarize1(1e-3, &[0, 1]);
/// let m = c.measure(&[0, 1], 0.0);
/// c.detector(&[m[0], m[1]]); // parity of a Bell pair is deterministic
/// assert_eq!(c.num_measurements(), 2);
/// assert_eq!(c.num_detectors(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    instructions: Vec<Instruction>,
    num_measurements: usize,
    num_detectors: usize,
    num_observables: u32,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            ..Default::default()
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of measurement record bits produced per shot.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Number of declared detectors.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables (max declared index + 1).
    pub fn num_observables(&self) -> u32 {
        self.num_observables
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    fn check_targets(&self, qs: &[u32]) {
        for &q in qs {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
    }

    fn check_pairs(&self, qs: &[(u32, u32)]) {
        for &(a, b) in qs {
            assert!(
                a < self.num_qubits && b < self.num_qubits,
                "qubit out of range"
            );
            assert_ne!(a, b, "two-qubit targets must be distinct");
        }
    }

    /// Appends a single-qubit gate layer.
    pub fn gate1(&mut self, g: Gate1, qs: &[u32]) -> &mut Self {
        self.check_targets(qs);
        self.instructions.push(Instruction::Gate1(g, qs.to_vec()));
        self
    }

    /// Appends Hadamards.
    pub fn h(&mut self, qs: &[u32]) -> &mut Self {
        self.gate1(Gate1::H, qs)
    }

    /// Appends S gates.
    pub fn s(&mut self, qs: &[u32]) -> &mut Self {
        self.gate1(Gate1::S, qs)
    }

    /// Appends X gates.
    pub fn x(&mut self, qs: &[u32]) -> &mut Self {
        self.gate1(Gate1::X, qs)
    }

    /// Appends Z gates.
    pub fn z(&mut self, qs: &[u32]) -> &mut Self {
        self.gate1(Gate1::Z, qs)
    }

    /// Appends a two-qubit gate layer.
    pub fn gate2(&mut self, g: Gate2, pairs: &[(u32, u32)]) -> &mut Self {
        self.check_pairs(pairs);
        self.instructions
            .push(Instruction::Gate2(g, pairs.to_vec()));
        self
    }

    /// Appends CNOTs.
    pub fn cx(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.gate2(Gate2::Cx, pairs)
    }

    /// Appends CZs.
    pub fn cz(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.gate2(Gate2::Cz, pairs)
    }

    /// Appends SWAPs.
    pub fn swap(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.gate2(Gate2::Swap, pairs)
    }

    /// Appends Z-basis measurements; returns the absolute record indices.
    pub fn measure(&mut self, qs: &[u32], flip: f64) -> Vec<usize> {
        self.check_targets(qs);
        check_prob(flip);
        let start = self.num_measurements;
        self.num_measurements += qs.len();
        self.instructions.push(Instruction::Measure {
            targets: qs.to_vec(),
            flip,
        });
        (start..self.num_measurements).collect()
    }

    /// Appends measure-and-reset operations; returns the record indices.
    pub fn measure_reset(&mut self, qs: &[u32], flip: f64) -> Vec<usize> {
        self.check_targets(qs);
        check_prob(flip);
        let start = self.num_measurements;
        self.num_measurements += qs.len();
        self.instructions.push(Instruction::MeasureReset {
            targets: qs.to_vec(),
            flip,
        });
        (start..self.num_measurements).collect()
    }

    /// Appends resets.
    pub fn reset(&mut self, qs: &[u32]) -> &mut Self {
        self.check_targets(qs);
        self.instructions.push(Instruction::Reset(qs.to_vec()));
        self
    }

    /// Appends independent stochastic Pauli noise.
    pub fn pauli_noise(&mut self, err: PauliErr, qs: &[u32]) -> &mut Self {
        self.check_targets(qs);
        assert!(
            err.px >= 0.0 && err.py >= 0.0 && err.pz >= 0.0 && err.total() <= 1.0,
            "invalid pauli error probabilities"
        );
        if err.total() > 0.0 {
            self.instructions
                .push(Instruction::PauliNoise(err, qs.to_vec()));
        }
        self
    }

    /// Appends single-qubit depolarizing noise.
    pub fn depolarize1(&mut self, p: f64, qs: &[u32]) -> &mut Self {
        self.check_targets(qs);
        check_prob(p);
        if p > 0.0 {
            self.instructions
                .push(Instruction::Depolarize1(p, qs.to_vec()));
        }
        self
    }

    /// Appends two-qubit depolarizing noise.
    pub fn depolarize2(&mut self, p: f64, pairs: &[(u32, u32)]) -> &mut Self {
        self.check_pairs(pairs);
        check_prob(p);
        if p > 0.0 {
            self.instructions
                .push(Instruction::Depolarize2(p, pairs.to_vec()));
        }
        self
    }

    /// Declares a detector over absolute measurement record indices.
    ///
    /// # Panics
    ///
    /// Panics if any index refers to a measurement that does not exist yet.
    pub fn detector(&mut self, meas: &[usize]) -> usize {
        for &m in meas {
            assert!(
                m < self.num_measurements,
                "measurement index {m} not yet recorded"
            );
        }
        self.instructions.push(Instruction::Detector(meas.to_vec()));
        self.num_detectors += 1;
        self.num_detectors - 1
    }

    /// Adds measurement record indices to logical observable `k`.
    pub fn observable(&mut self, k: u32, meas: &[usize]) -> &mut Self {
        for &m in meas {
            assert!(
                m < self.num_measurements,
                "measurement index {m} not yet recorded"
            );
        }
        self.instructions
            .push(Instruction::Observable(k, meas.to_vec()));
        self.num_observables = self.num_observables.max(k + 1);
        self
    }

    /// Appends a timing barrier.
    pub fn tick(&mut self) -> &mut Self {
        self.instructions.push(Instruction::Tick);
        self
    }

    /// Appends all instructions of `other` (indices are shifted so `other`'s
    /// detectors and observables keep referring to its own measurements).
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit uses more qubits"
        );
        let offset = self.num_measurements;
        for inst in &other.instructions {
            let shifted = match inst {
                Instruction::Detector(ms) => {
                    self.num_detectors += 1;
                    Instruction::Detector(ms.iter().map(|m| m + offset).collect())
                }
                Instruction::Observable(k, ms) => {
                    self.num_observables = self.num_observables.max(k + 1);
                    Instruction::Observable(*k, ms.iter().map(|m| m + offset).collect())
                }
                other => other.clone(),
            };
            self.instructions.push(shifted);
        }
        self.num_measurements += other.num_measurements;
    }

    /// Counts noise instruction sites (error mechanisms before expansion),
    /// used by the DSE cost ledger.
    pub fn num_noise_sites(&self) -> usize {
        self.instructions
            .iter()
            .map(|inst| match inst {
                Instruction::PauliNoise(_, qs) | Instruction::Depolarize1(_, qs) => qs.len(),
                Instruction::Depolarize2(_, ps) => ps.len(),
                Instruction::Measure { targets, flip }
                | Instruction::MeasureReset { targets, flip }
                    if *flip > 0.0 =>
                {
                    targets.len()
                }
                _ => 0,
            })
            .sum()
    }
}

fn check_prob(p: f64) {
    assert!(
        (0.0..=1.0).contains(&p) && p.is_finite(),
        "probability {p} outside [0, 1]"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_indices_are_sequential() {
        let mut c = Circuit::new(3);
        let a = c.measure(&[0, 1], 0.0);
        let b = c.measure(&[2], 0.01);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(b, vec![2]);
        assert_eq!(c.num_measurements(), 3);
    }

    #[test]
    fn detectors_and_observables_count() {
        let mut c = Circuit::new(2);
        let m = c.measure(&[0, 1], 0.0);
        c.detector(&[m[0]]);
        c.detector(&[m[0], m[1]]);
        c.observable(0, &[m[1]]);
        assert_eq!(c.num_detectors(), 2);
        assert_eq!(c.num_observables(), 1);
    }

    #[test]
    #[should_panic(expected = "not yet recorded")]
    fn detector_of_future_measurement_panics() {
        let mut c = Circuit::new(1);
        c.detector(&[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(&[5]);
    }

    #[test]
    fn zero_probability_noise_is_elided() {
        let mut c = Circuit::new(1);
        c.depolarize1(0.0, &[0]);
        assert!(c.instructions().is_empty());
    }

    #[test]
    fn append_shifts_record_indices() {
        let mut block = Circuit::new(2);
        let m = block.measure(&[0, 1], 0.0);
        block.detector(&[m[0], m[1]]);

        let mut c = Circuit::new(2);
        c.measure(&[0], 0.0);
        c.append(&block);
        assert_eq!(c.num_measurements(), 3);
        let det = c
            .instructions()
            .iter()
            .find_map(|i| match i {
                Instruction::Detector(ms) => Some(ms.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(det, vec![1, 2]);
    }

    #[test]
    fn noise_site_accounting() {
        let mut c = Circuit::new(4);
        c.depolarize1(0.001, &[0, 1, 2]);
        c.depolarize2(0.01, &[(0, 1), (2, 3)]);
        c.measure(&[0], 0.02);
        c.measure(&[1], 0.0);
        assert_eq!(c.num_noise_sites(), 3 + 2 + 1);
    }
}
