//! Detector and observable sampling.
//!
//! A **detector** is a parity of measurement outcomes that is deterministic
//! in the absence of noise; it "fires" when noise flips that parity. A
//! **logical observable** is a parity of measurements encoding the logical
//! state. Both are assembled from the frame sampler's measurement flips
//! (Stim's semantics): because frames record *deviations* from the noiseless
//! reference, a detector fires exactly when the XOR of its measurement flips
//! is one.

use hetarch_exec::WorkerPool;

use crate::bits::BitTable;
use crate::circuit::{Circuit, Gate1, Gate2, Instruction};
use crate::frame::FrameSampler;
use crate::tableau::Tableau;

/// Sampled detector and observable-flip data for a batch of shots.
#[derive(Clone, Debug)]
pub struct DetectorSamples {
    /// `num_detectors × shots` detector firings.
    pub detectors: BitTable,
    /// `num_observables × shots` observable flips.
    pub observables: BitTable,
}

impl DetectorSamples {
    /// Fraction of shots in which observable `k` flipped (the raw logical
    /// error rate when no decoder is applied).
    pub fn observable_flip_rate(&self, k: usize) -> f64 {
        self.observables.count_ones(k) as f64 / self.observables.shots() as f64
    }
}

/// Computes the noiseless reference measurement sample with the tableau
/// simulator (random outcomes forced to zero, Stim's convention).
pub fn reference_sample(circuit: &Circuit) -> Vec<bool> {
    let mut t = Tableau::new(circuit.num_qubits().max(1) as usize);
    let mut record = Vec::with_capacity(circuit.num_measurements());
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate1(g, qs) => {
                for &q in qs {
                    let q = q as usize;
                    match g {
                        Gate1::H => t.h(q),
                        Gate1::S => t.s(q),
                        Gate1::SDag => t.s_dag(q),
                        Gate1::X => t.x(q),
                        Gate1::Y => t.y(q),
                        Gate1::Z => t.z(q),
                    }
                }
            }
            Instruction::Gate2(g, pairs) => {
                for &(a, b) in pairs {
                    let (a, b) = (a as usize, b as usize);
                    match g {
                        Gate2::Cx => t.cx(a, b),
                        Gate2::Cz => t.cz(a, b),
                        Gate2::Swap => t.swap(a, b),
                    }
                }
            }
            Instruction::Measure { targets, .. } => {
                for &q in targets {
                    record.push(t.measure_forced(q as usize, false));
                }
            }
            Instruction::MeasureReset { targets, .. } => {
                for &q in targets {
                    let out = t.measure_forced(q as usize, false);
                    record.push(out);
                    if out {
                        t.x(q as usize);
                    }
                }
            }
            Instruction::Reset(qs) => {
                for &q in qs {
                    t.reset_forced(q as usize);
                }
            }
            _ => {}
        }
    }
    record
}

/// Verifies that every detector has even reference parity (i.e. is
/// deterministic-zero under no noise). Returns the indices of violating
/// detectors.
pub fn nondeterministic_detectors(circuit: &Circuit) -> Vec<usize> {
    let reference = reference_sample(circuit);
    let mut bad = Vec::new();
    let mut det = 0usize;
    for inst in circuit.instructions() {
        if let Instruction::Detector(ms) = inst {
            let parity = ms.iter().fold(false, |acc, &m| acc ^ reference[m]);
            if parity {
                bad.push(det);
            }
            det += 1;
        }
    }
    bad
}

/// Samples `shots` noisy executions of `circuit`, returning detector firings
/// and observable flips.
///
/// Runs on the global [`WorkerPool`] via the sharded
/// [`FrameSampler::sample`] path; the output is bit-identical for every
/// worker count (see [`hetarch_exec`]'s `(seed, shard)` contract).
pub fn sample_detectors(circuit: &Circuit, shots: usize, seed: u64) -> DetectorSamples {
    sample_detectors_on(WorkerPool::global(), circuit, shots, seed)
}

/// As [`sample_detectors`] with an explicit worker pool.
pub fn sample_detectors_on(
    pool: &WorkerPool,
    circuit: &Circuit,
    shots: usize,
    seed: u64,
) -> DetectorSamples {
    let result = FrameSampler::sample(circuit, shots, seed, pool);
    assemble(circuit, &result.meas_flips, shots)
}

/// Assembles detector firings and observable flips from a measurement-flip
/// table (e.g. one produced by [`FrameSampler::run_with_faults`] or
/// [`crate::frame::sample_at_weight`] on the rare-event path).
pub fn assemble_detectors(
    circuit: &Circuit,
    meas_flips: &BitTable,
    shots: usize,
) -> DetectorSamples {
    assemble(circuit, meas_flips, shots)
}

fn assemble(circuit: &Circuit, meas_flips: &BitTable, shots: usize) -> DetectorSamples {
    let mut detectors = BitTable::new(circuit.num_detectors(), shots);
    let mut observables = BitTable::new(circuit.num_observables() as usize, shots);
    let mut det = 0usize;
    for inst in circuit.instructions() {
        match inst {
            Instruction::Detector(ms) => {
                for &m in ms {
                    detectors.xor_row(det, meas_flips.row(m));
                }
                det += 1;
            }
            Instruction::Observable(k, ms) => {
                for &m in ms {
                    observables.xor_row(*k as usize, meas_flips.row(m));
                }
            }
            _ => {}
        }
    }
    DetectorSamples {
        detectors,
        observables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::PauliErr;

    /// A tiny 3-qubit repetition-code memory: 2 ancilla parity checks
    /// repeated twice.
    fn rep_code_circuit(px: f64, meas_flip: f64) -> Circuit {
        // Qubits 0,1,2 = data; 3,4 = ancilla.
        let mut c = Circuit::new(5);
        let mut prev: Option<Vec<usize>> = None;
        for _round in 0..2 {
            c.pauli_noise(
                PauliErr {
                    px,
                    py: 0.0,
                    pz: 0.0,
                },
                &[0, 1, 2],
            );
            c.cx(&[(0, 3), (1, 4)]);
            c.cx(&[(1, 3), (2, 4)]);
            let m = c.measure_reset(&[3, 4], meas_flip);
            if let Some(p) = &prev {
                c.detector(&[p[0], m[0]]);
                c.detector(&[p[1], m[1]]);
            } else {
                c.detector(&[m[0]]);
                c.detector(&[m[1]]);
            }
            prev = Some(m);
        }
        let fin = c.measure(&[0, 1, 2], 0.0);
        let p = prev.unwrap();
        c.detector(&[fin[0], fin[1], p[0]]);
        c.detector(&[fin[1], fin[2], p[1]]);
        c.observable(0, &[fin[0]]);
        c
    }

    #[test]
    fn rep_code_detectors_are_deterministic() {
        let c = rep_code_circuit(0.01, 0.01);
        assert!(nondeterministic_detectors(&c).is_empty());
    }

    #[test]
    fn noiseless_run_fires_nothing() {
        let c = rep_code_circuit(0.0, 0.0);
        let s = sample_detectors(&c, 512, 11);
        for d in 0..c.num_detectors() {
            assert_eq!(s.detectors.count_ones(d), 0, "detector {d} fired");
        }
        assert_eq!(s.observables.count_ones(0), 0);
    }

    #[test]
    fn data_errors_fire_adjacent_detectors() {
        // Deterministic X on the middle data qubit fires both first-round
        // detectors and both final detectors... it is flipped once before
        // round 0 and once before round 1.
        let mut c = Circuit::new(5);
        c.pauli_noise(
            PauliErr {
                px: 1.0,
                py: 0.0,
                pz: 0.0,
            },
            &[1],
        );
        c.cx(&[(0, 3), (1, 4)]);
        c.cx(&[(1, 3), (2, 4)]);
        let m = c.measure_reset(&[3, 4], 0.0);
        c.detector(&[m[0]]);
        c.detector(&[m[1]]);
        let s = sample_detectors(&c, 64, 3);
        assert_eq!(s.detectors.count_ones(0), 64);
        assert_eq!(s.detectors.count_ones(1), 64);
    }

    #[test]
    fn observable_flip_rate_tracks_error_rate() {
        let c = rep_code_circuit(0.3, 0.0);
        let s = sample_detectors(&c, 50_000, 17);
        // Qubit 0 flips with probability p per round (2 rounds): net flip
        // probability 2p(1-p).
        let expect = 2.0 * 0.3 * 0.7;
        let rate = s.observable_flip_rate(0);
        assert!(
            (rate - expect).abs() < 0.01,
            "rate {rate}, expected {expect}"
        );
    }

    #[test]
    fn measurement_flip_fires_time_pair() {
        // Only measurement noise on the first-round ancilla measurement:
        // detectors at rounds 0 and 1 for that ancilla should fire together.
        let c = rep_code_circuit(0.0, 0.2);
        let s = sample_detectors(&c, 20_000, 23);
        let d0 = s.detectors.count_ones(0) as f64 / 20_000.0;
        let d2 = s.detectors.count_ones(2) as f64 / 20_000.0;
        // Detector 0 fires iff round-0 measurement of ancilla 3 flipped.
        assert!((d0 - 0.2).abs() < 0.02, "d0 = {d0}");
        // Detector 2 (same ancilla, next round) fires iff exactly one of the
        // two measurement flips happened: 2p(1-p) = 0.32.
        assert!((d2 - 0.32).abs() < 0.02, "d2 = {d2}");
    }
}
