//! Bit-packed tables for batched Monte-Carlo results.

use serde::{Deserialize, Serialize};

/// A rows × shots bit matrix, packed 64 shots per word.
///
/// # Examples
///
/// ```
/// use hetarch_stab::bits::BitTable;
///
/// let mut t = BitTable::new(2, 100);
/// t.set(1, 70, true);
/// assert!(t.get(1, 70));
/// assert_eq!(t.count_ones(1), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTable {
    rows: usize,
    shots: usize,
    words: usize,
    data: Vec<u64>,
}

impl BitTable {
    /// Creates an all-zero table.
    pub fn new(rows: usize, shots: usize) -> Self {
        let words = shots.div_ceil(64).max(1);
        BitTable {
            rows,
            shots,
            words,
            data: vec![0; rows * words],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of shots (columns).
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Words per row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Reads bit (`row`, `shot`).
    #[inline]
    pub fn get(&self, row: usize, shot: usize) -> bool {
        debug_assert!(row < self.rows && shot < self.shots);
        (self.data[row * self.words + shot / 64] >> (shot % 64)) & 1 == 1
    }

    /// Writes bit (`row`, `shot`).
    #[inline]
    pub fn set(&mut self, row: usize, shot: usize, v: bool) {
        debug_assert!(row < self.rows && shot < self.shots);
        let idx = row * self.words + shot / 64;
        let bit = 1u64 << (shot % 64);
        self.data[idx] = (self.data[idx] & !bit) | if v { bit } else { 0 };
    }

    /// Borrows a row as words.
    #[inline]
    pub fn row(&self, row: usize) -> &[u64] {
        &self.data[row * self.words..(row + 1) * self.words]
    }

    /// Mutably borrows a row as words.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [u64] {
        &mut self.data[row * self.words..(row + 1) * self.words]
    }

    /// XORs `src` into row `row`.
    pub fn xor_row(&mut self, row: usize, src: &[u64]) {
        let dst = self.row_mut(row);
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    /// Sets every valid bit of `row` (bits past `shots` stay zero).
    pub fn fill_row(&mut self, row: usize) {
        let shots = self.shots;
        let words = self.words;
        let dst = self.row_mut(row);
        for (w, d) in dst.iter_mut().enumerate() {
            let remaining = shots.saturating_sub(w * 64);
            *d = if remaining >= 64 {
                u64::MAX
            } else if remaining == 0 {
                0
            } else {
                (1u64 << remaining) - 1
            };
        }
        let _ = words;
    }

    /// Copies every row of `src` into this table starting at shot column
    /// `shot_offset` (the merge step of sharded sampling).
    ///
    /// Exactly `src.shots()` columns are written: destination bits outside
    /// `[shot_offset, shot_offset + src.shots())` are preserved, including
    /// bits sharing the final partial word with the spliced range. The
    /// offset does not need to be word-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or `src` does not fit at that offset.
    pub fn splice_shots(&mut self, src: &BitTable, shot_offset: usize) {
        assert_eq!(self.rows, src.rows, "row count mismatch");
        assert!(
            shot_offset + src.shots <= self.shots,
            "source table does not fit at offset {shot_offset}"
        );
        if src.shots == 0 {
            return;
        }
        for row in 0..self.rows {
            let src_row = row * src.words;
            let dst_row = row * self.words;
            let mut copied = 0;
            while copied < src.shots {
                let nbits = (src.shots - copied).min(64);
                let mask = if nbits == 64 {
                    u64::MAX
                } else {
                    (1u64 << nbits) - 1
                };
                let word = src.data[src_row + copied / 64] & mask;
                let pos = shot_offset + copied;
                let (wi, sh) = (pos / 64, pos % 64);
                let idx = dst_row + wi;
                self.data[idx] = (self.data[idx] & !(mask << sh)) | (word << sh);
                // Bits that cross into the next destination word.
                let spill = (sh + nbits).saturating_sub(64);
                if spill > 0 {
                    let hi_mask = (1u64 << spill) - 1;
                    let hi = word >> (64 - sh);
                    self.data[idx + 1] = (self.data[idx + 1] & !hi_mask) | hi;
                }
                copied += nbits;
            }
        }
    }

    /// Number of set bits in `row`.
    pub fn count_ones(&self, row: usize) -> usize {
        self.row(row).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Word `block` of row `row` (shots `64*block .. 64*block+64`).
    #[inline]
    pub fn word(&self, row: usize, block: usize) -> u64 {
        debug_assert!(row < self.rows && block < self.words);
        self.data[row * self.words + block]
    }

    /// Iterates the set shot indices in `row`.
    pub fn iter_ones(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let shots = self.shots;
        self.row(row)
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let mut bits = word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(w * 64 + b)
                    }
                })
                .filter(move |&s| s < shots)
            })
    }
}

/// Sparse per-shot set-row lists for one 64-shot column block of a
/// [`BitTable`] — the decoder-facing "defect list" view of a packed
/// detector table.
///
/// [`ShotBlock::load`] makes a single pass over the rows of one word
/// column, turning each set bit (via `trailing_zeros`) into an entry of the
/// corresponding lane's row-index list. Lists come out in ascending row
/// order, which is exactly the order a dense `&[bool]` scan would produce —
/// the property the union-find bit-identity contract relies on
/// (DESIGN.md §5k). Lanes whose word column is all zero get empty lists and
/// are reported absent from the returned occupancy mask, enabling an
/// all-zero fast path that skips decoding entirely.
///
/// The 64 lane buffers are reused across `load` calls; after the first few
/// blocks the structure is allocation-free in steady state.
#[derive(Clone, Debug, Default)]
pub struct ShotBlock {
    lists: Vec<Vec<u32>>,
}

impl ShotBlock {
    /// Creates an empty block extractor.
    pub fn new() -> Self {
        ShotBlock {
            lists: Vec::from_iter(std::iter::repeat_with(Vec::new).take(64)),
        }
    }

    /// Loads word column `block` of `table`, restricted to the lanes in
    /// `lane_mask`. Returns the occupancy mask: lanes (within `lane_mask`)
    /// whose column holds at least one set bit.
    pub fn load(&mut self, table: &BitTable, block: usize, lane_mask: u64) -> u64 {
        if self.lists.len() != 64 {
            self.lists.resize_with(64, Vec::new);
        }
        for list in &mut self.lists {
            list.clear();
        }
        let mut occupied = 0u64;
        for row in 0..table.rows() {
            let mut bits = table.word(row, block) & lane_mask;
            occupied |= bits;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.lists[lane].push(row as u32);
            }
        }
        occupied
    }

    /// The ascending set-row indices of `lane` from the last `load`.
    #[inline]
    pub fn rows(&self, lane: usize) -> &[u32] {
        &self.lists[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut t = BitTable::new(3, 130);
        for (r, s) in [(0, 0), (1, 63), (1, 64), (2, 129)] {
            t.set(r, s, true);
            assert!(t.get(r, s));
        }
        assert!(!t.get(0, 1));
    }

    #[test]
    fn xor_row_combines() {
        let mut t = BitTable::new(2, 64);
        t.set(0, 3, true);
        let src = t.row(0).to_vec();
        t.xor_row(1, &src);
        assert!(t.get(1, 3));
        t.xor_row(1, &src);
        assert!(!t.get(1, 3));
    }

    #[test]
    fn fill_row_respects_shot_count() {
        let mut t = BitTable::new(1, 70);
        t.fill_row(0);
        assert_eq!(t.count_ones(0), 70);
    }

    #[test]
    fn splice_shots_places_bits_at_offset() {
        let mut dst = BitTable::new(2, 200);
        let mut src = BitTable::new(2, 70);
        src.set(0, 0, true);
        src.set(1, 69, true);
        dst.splice_shots(&src, 64);
        assert!(dst.get(0, 64));
        assert!(dst.get(1, 64 + 69));
        assert_eq!(dst.count_ones(0), 1);
        assert_eq!(dst.count_ones(1), 1);
        // Zero-shot splice is a no-op.
        dst.splice_shots(&BitTable::new(2, 0), 0);
        assert_eq!(dst.count_ones(0), 1);
    }

    #[test]
    fn splice_shots_zero_shot_is_noop_at_any_offset() {
        let mut dst = BitTable::new(1, 100);
        dst.fill_row(0);
        let empty = BitTable::new(1, 0);
        dst.splice_shots(&empty, 0);
        dst.splice_shots(&empty, 37);
        dst.splice_shots(&empty, 100);
        assert_eq!(dst.count_ones(0), 100);
    }

    #[test]
    fn splice_shots_at_non_word_aligned_offset() {
        let mut dst = BitTable::new(1, 200);
        let mut src = BitTable::new(1, 70);
        // Pattern spanning the source's own word boundary.
        for s in [0, 1, 63, 64, 69] {
            src.set(0, s, true);
        }
        dst.splice_shots(&src, 37);
        let got: Vec<_> = dst.iter_ones(0).collect();
        assert_eq!(got, vec![37, 38, 37 + 63, 37 + 64, 37 + 69]);
    }

    #[test]
    fn splice_shots_preserves_bits_beyond_final_partial_word() {
        // A 10-shot source spliced at 0 must leave dst shots 10..64 intact
        // even though they share the destination word with the splice.
        let mut dst = BitTable::new(1, 64);
        dst.fill_row(0);
        let src = BitTable::new(1, 10); // all zero
        dst.splice_shots(&src, 0);
        for s in 0..10 {
            assert!(!dst.get(0, s), "shot {s} should be cleared");
        }
        for s in 10..64 {
            assert!(dst.get(0, s), "shot {s} must be preserved");
        }
    }

    #[test]
    fn splice_shots_preserves_surrounding_bits_both_sides() {
        let mut dst = BitTable::new(2, 300);
        for row in 0..2 {
            dst.fill_row(row);
        }
        let mut src = BitTable::new(2, 90);
        src.set(0, 45, true);
        dst.splice_shots(&src, 101);
        // Row 0: only shot 101+45 set within the spliced window; everything
        // outside the window still set.
        for s in 0..300 {
            let inside = (101..191).contains(&s);
            let expect = if inside { s == 101 + 45 } else { true };
            assert_eq!(dst.get(0, s), expect, "row 0 shot {s}");
        }
        // Row 1: spliced window fully cleared.
        assert_eq!(dst.count_ones(1), 300 - 90);
    }

    #[test]
    fn splice_shots_word_aligned_full_words_roundtrip() {
        let mut dst = BitTable::new(1, 256);
        let mut src = BitTable::new(1, 128);
        for s in (0..128).step_by(7) {
            src.set(0, s, true);
        }
        dst.splice_shots(&src, 128);
        let got: Vec<_> = dst.iter_ones(0).collect();
        let want: Vec<_> = (0..128).step_by(7).map(|s| s + 128).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut t = BitTable::new(1, 200);
        for s in [5, 64, 65, 199] {
            t.set(0, s, true);
        }
        let got: Vec<_> = t.iter_ones(0).collect();
        assert_eq!(got, vec![5, 64, 65, 199]);
    }

    #[test]
    fn shot_block_matches_dense_extraction() {
        let mut t = BitTable::new(7, 150);
        for (r, s) in [(0, 64), (3, 64), (6, 64), (2, 70), (5, 127), (1, 149)] {
            t.set(r, s, true);
        }
        let mut block = ShotBlock::new();
        let occ = block.load(&t, 1, u64::MAX);
        // Lane 0 of block 1 is shot 64: rows 0, 3, 6 ascending.
        assert_eq!(block.rows(0), &[0, 3, 6]);
        assert_eq!(block.rows(6), &[2]);
        assert_eq!(block.rows(63), &[5]);
        assert_eq!(block.rows(1), &[] as &[u32]);
        assert_eq!(occ, 1 | (1 << 6) | (1 << 63));
        // Lane mask excludes lane 0: its list empties and the mask drops it.
        let occ = block.load(&t, 1, !1);
        assert_eq!(block.rows(0), &[] as &[u32]);
        assert_eq!(occ, (1 << 6) | (1 << 63));
        // Block 2 holds shot 149 only (lane 21).
        let occ = block.load(&t, 2, u64::MAX);
        assert_eq!(occ, 1 << 21);
        assert_eq!(block.rows(21), &[1]);
    }
}
