//! CHP (Aaronson–Gottesman) stabilizer tableau simulator.
//!
//! The tableau simulator plays two roles in the HetArch stack:
//!
//! 1. producing the **reference sample** (noiseless measurement outcomes) that
//!    anchors the Pauli-frame Monte-Carlo sampler, exactly as Stim does, and
//! 2. serving as an independently-implemented stabilizer simulator for
//!    cross-validation against the density-matrix substrate.

use rand::Rng;

use crate::pauli::{Pauli, PauliString};

/// A stabilizer state over `n` qubits in tableau form.
///
/// Rows `0..n` are destabilizers, rows `n..2n` are stabilizers.
///
/// # Examples
///
/// ```
/// use hetarch_stab::tableau::Tableau;
///
/// let mut t = Tableau::new(2);
/// t.h(0);
/// t.cx(0, 1);
/// // A Bell pair measures randomly but with perfect correlation.
/// assert_eq!(t.prob_one(0), 0.5);
/// let a = t.measure_forced(0, false);
/// let b = t.measure_forced(1, false);
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct Tableau {
    n: usize,
    words: usize,
    /// X bit matrix, `2n` rows × `words` words.
    xs: Vec<u64>,
    /// Z bit matrix.
    zs: Vec<u64>,
    /// Row phases (true = −1).
    phases: Vec<bool>,
}

impl Tableau {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "tableau needs at least one qubit");
        let words = n.div_ceil(64);
        let mut t = Tableau {
            n,
            words,
            xs: vec![0; 2 * n * words],
            zs: vec![0; 2 * n * words],
            phases: vec![false; 2 * n],
        };
        for q in 0..n {
            // Destabilizer i = X_i, stabilizer i = Z_i.
            t.set_x(q, q, true);
            t.set_z(n + q, q, true);
        }
        t
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn get_x(&self, row: usize, q: usize) -> bool {
        (self.xs[row * self.words + q / 64] >> (q % 64)) & 1 == 1
    }

    #[inline]
    fn get_z(&self, row: usize, q: usize) -> bool {
        (self.zs[row * self.words + q / 64] >> (q % 64)) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, row: usize, q: usize, v: bool) {
        let idx = row * self.words + q / 64;
        let bit = 1u64 << (q % 64);
        self.xs[idx] = (self.xs[idx] & !bit) | if v { bit } else { 0 };
    }

    #[inline]
    fn set_z(&mut self, row: usize, q: usize, v: bool) {
        let idx = row * self.words + q / 64;
        let bit = 1u64 << (q % 64);
        self.zs[idx] = (self.zs[idx] & !bit) | if v { bit } else { 0 };
    }

    /// Applies a Hadamard on qubit `q`.
    pub fn h(&mut self, q: usize) {
        self.check_q(q);
        for row in 0..2 * self.n {
            let x = self.get_x(row, q);
            let z = self.get_z(row, q);
            if x && z {
                self.phases[row] = !self.phases[row];
            }
            self.set_x(row, q, z);
            self.set_z(row, q, x);
        }
    }

    /// Applies the phase gate S on qubit `q`.
    pub fn s(&mut self, q: usize) {
        self.check_q(q);
        for row in 0..2 * self.n {
            let x = self.get_x(row, q);
            let z = self.get_z(row, q);
            if x && z {
                self.phases[row] = !self.phases[row];
            }
            self.set_z(row, q, x ^ z);
        }
    }

    /// Applies S† on qubit `q`.
    pub fn s_dag(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// Applies Pauli X on qubit `q`.
    pub fn x(&mut self, q: usize) {
        self.check_q(q);
        for row in 0..2 * self.n {
            if self.get_z(row, q) {
                self.phases[row] = !self.phases[row];
            }
        }
    }

    /// Applies Pauli Y on qubit `q`.
    pub fn y(&mut self, q: usize) {
        self.check_q(q);
        for row in 0..2 * self.n {
            if self.get_z(row, q) ^ self.get_x(row, q) {
                self.phases[row] = !self.phases[row];
            }
        }
    }

    /// Applies Pauli Z on qubit `q`.
    pub fn z(&mut self, q: usize) {
        self.check_q(q);
        for row in 0..2 * self.n {
            if self.get_x(row, q) {
                self.phases[row] = !self.phases[row];
            }
        }
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either is out of range.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.check_q(c);
        self.check_q(t);
        assert_ne!(c, t, "cx requires distinct qubits");
        for row in 0..2 * self.n {
            let xc = self.get_x(row, c);
            let zc = self.get_z(row, c);
            let xt = self.get_x(row, t);
            let zt = self.get_z(row, t);
            if xc && zt && (xt == zc) {
                self.phases[row] = !self.phases[row];
            }
            self.set_x(row, t, xt ^ xc);
            self.set_z(row, c, zc ^ zt);
        }
    }

    /// Applies a CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Applies a SWAP between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Probability of measuring `1` on qubit `q`: `0.0`, `0.5` or `1.0` for
    /// stabilizer states.
    pub fn prob_one(&self, q: usize) -> f64 {
        self.check_q(q);
        for row in self.n..2 * self.n {
            if self.get_x(row, q) {
                return 0.5;
            }
        }
        // Deterministic: compute via scratch rowsum.
        if self.deterministic_outcome(q) {
            1.0
        } else {
            0.0
        }
    }

    /// Measures qubit `q` in the Z basis using `rng` for random outcomes.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let coin = rng.gen::<bool>();
        self.measure_with(q, coin)
    }

    /// Measures qubit `q`, forcing the outcome to `forced` when the result is
    /// random (used for reference samples).
    pub fn measure_forced(&mut self, q: usize, forced: bool) -> bool {
        self.measure_with(q, forced)
    }

    /// Resets qubit `q` to `|0⟩` (forced-zero measurement followed by a
    /// conditional X).
    pub fn reset_forced(&mut self, q: usize) {
        if self.measure_forced(q, false) {
            self.x(q);
        }
    }

    fn measure_with(&mut self, q: usize, random_outcome: bool) -> bool {
        self.check_q(q);
        let n = self.n;
        // Find a stabilizer with X on q.
        let p = (n..2 * n).find(|&row| self.get_x(row, q));
        if let Some(p) = p {
            // Random outcome.
            for row in 0..2 * n {
                if row != p && self.get_x(row, q) {
                    self.rowsum(row, p);
                }
            }
            // Destabilizer p-n ← old stabilizer p.
            self.copy_row(p - n, p);
            // Stabilizer p ← ±Z_q.
            self.clear_row(p);
            self.set_z(p, q, true);
            self.phases[p] = random_outcome;
            random_outcome
        } else {
            self.deterministic_outcome(q)
        }
    }

    /// Computes the deterministic measurement outcome of qubit `q` (must be
    /// deterministic).
    fn deterministic_outcome(&self, q: usize) -> bool {
        // Scratch row accumulation: sum stabilizer rows i+n over destabilizers
        // i that have X on q.
        let n = self.n;
        let mut sx = vec![0u64; self.words];
        let mut sz = vec![0u64; self.words];
        let mut sphase = 0u32; // accumulated i-exponent (mod 4), 2 = minus.
        for i in 0..n {
            if self.get_x(i, q) {
                let row = i + n;
                sphase = (sphase
                    + 2 * (self.phases[row] as u32)
                    + phase_exponent(&sx, &sz, self.row_x(row), self.row_z(row)))
                    % 4;
                for w in 0..self.words {
                    sx[w] ^= self.row_x(row)[w];
                    sz[w] ^= self.row_z(row)[w];
                }
            }
        }
        debug_assert!(sphase.is_multiple_of(2), "scratch phase must be real");
        sphase == 2
    }

    #[inline]
    fn row_x(&self, row: usize) -> &[u64] {
        &self.xs[row * self.words..(row + 1) * self.words]
    }

    #[inline]
    fn row_z(&self, row: usize) -> &[u64] {
        &self.zs[row * self.words..(row + 1) * self.words]
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        for w in 0..self.words {
            self.xs[dst * self.words + w] = self.xs[src * self.words + w];
            self.zs[dst * self.words + w] = self.zs[src * self.words + w];
        }
        self.phases[dst] = self.phases[src];
    }

    fn clear_row(&mut self, row: usize) {
        for w in 0..self.words {
            self.xs[row * self.words + w] = 0;
            self.zs[row * self.words + w] = 0;
        }
        self.phases[row] = false;
    }

    /// Row h ← row h · row i (Aaronson–Gottesman "rowsum").
    fn rowsum(&mut self, h: usize, i: usize) {
        let exp = {
            let hx = self.row_x(h).to_vec();
            let hz = self.row_z(h).to_vec();
            (2 * (self.phases[h] as u32)
                + 2 * (self.phases[i] as u32)
                + phase_exponent(&hx, &hz, self.row_x(i), self.row_z(i)))
                % 4
        };
        // Destabilizer rows may anticommute with the pivot; their phases are
        // bookkeeping-only in Aaronson–Gottesman, so odd exponents are
        // tolerated there and collapsed arbitrarily.
        debug_assert!(
            h < self.n || exp % 2 == 0,
            "stabilizer rowsum must stay hermitian"
        );
        self.phases[h] = exp >= 2;
        for w in 0..self.words {
            self.xs[h * self.words + w] ^= self.xs[i * self.words + w];
            self.zs[h * self.words + w] ^= self.zs[i * self.words + w];
        }
    }

    fn check_q(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
    }

    /// Returns stabilizer generator `i` (0-based) as a [`PauliString`].
    pub fn stabilizer(&self, i: usize) -> PauliString {
        assert!(i < self.n, "stabilizer index {i} out of range");
        let row = i + self.n;
        let mut p = PauliString::identity(self.n);
        for q in 0..self.n {
            p.set(q, Pauli::from_xz(self.get_x(row, q), self.get_z(row, q)));
        }
        if self.phases[row] {
            p.negate();
        }
        p
    }
}

/// Accumulated i-exponent when multiplying the Pauli with bits `(x1, z1)` by
/// the Pauli with bits `(x2, z2)` (per-word, summed mod 4).
fn phase_exponent(x1v: &[u64], z1v: &[u64], x2v: &[u64], z2v: &[u64]) -> u32 {
    let mut plus = 0u64;
    let mut minus = 0u64;
    for w in 0..x1v.len() {
        let (x1, z1, x2, z2) = (x1v[w], z1v[w], x2v[w], z2v[w]);
        // g(x1,z1 ; x2,z2) per bit; note argument order: row1 multiplied by row2.
        // Cases where the contribution is +1:
        let p = (x1 & z1 & z2 & !x2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
        // Cases where the contribution is −1:
        let m = (x1 & z1 & x2 & !z2) | (x1 & !z1 & !x2 & z2) | (!x1 & z1 & x2 & z2);
        plus += p.count_ones() as u64;
        minus += m.count_ones() as u64;
    }
    (((plus as i64 - minus as i64) % 4 + 4) % 4) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_state_measures_zero() {
        let mut t = Tableau::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        for q in 0..3 {
            assert_eq!(t.prob_one(q), 0.0);
            assert!(!t.measure(q, &mut rng));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(2);
        t.x(1);
        assert_eq!(t.prob_one(1), 1.0);
        assert_eq!(t.prob_one(0), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.measure(1, &mut rng));
    }

    #[test]
    fn hadamard_randomizes_then_collapses() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert_eq!(t.prob_one(0), 0.5);
        let out = t.measure_forced(0, true);
        assert!(out);
        assert_eq!(t.prob_one(0), 1.0);
    }

    #[test]
    fn bell_pair_correlations() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut saw = [false; 2];
        for _ in 0..64 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cx(0, 1);
            let a = t.measure(0, &mut rng);
            let b = t.measure(1, &mut rng);
            assert_eq!(a, b);
            saw[a as usize] = true;
        }
        assert!(saw[0] && saw[1], "both outcomes should occur");
    }

    #[test]
    fn ghz_stabilizers() {
        let mut t = Tableau::new(3);
        t.h(0);
        t.cx(0, 1);
        t.cx(1, 2);
        // All-equal outcomes.
        for _ in 0..16 {
            let mut t2 = t.clone();
            let a = t2.measure_forced(0, true);
            let b = t2.measure_forced(1, false); // now deterministic
            let c = t2.measure_forced(2, false);
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn s_gate_turns_plus_into_plus_i() {
        // H then S then H: |0> -> |+> -> |+i> -> measure should be random;
        // but H S S H |0> = HZH|0> = X|0> = |1>.
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        assert_eq!(t.prob_one(0), 1.0);
    }

    #[test]
    fn s_dag_inverts_s() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s_dag(0);
        t.h(0);
        assert_eq!(t.prob_one(0), 0.0);
    }

    #[test]
    fn cz_phase_kickback() {
        // |++> -CZ-> entangled: measuring one in X basis...
        // Simpler check: CZ with control |1>: H(1);X(0);CZ(0,1);H(1) == X(0) Z-kick -> |1>H Z H = |1>X? Use algebra:
        // X(0); H(1); CZ(0,1); H(1) should equal X(0) X(1)? CZ with qubit0=1 applies Z to qubit1: HZH = X.
        let mut t = Tableau::new(2);
        t.x(0);
        t.h(1);
        t.cz(0, 1);
        t.h(1);
        assert_eq!(t.prob_one(1), 1.0);
        assert_eq!(t.prob_one(0), 1.0);
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(2);
        t.x(0);
        t.swap(0, 1);
        assert_eq!(t.prob_one(0), 0.0);
        assert_eq!(t.prob_one(1), 1.0);
    }

    #[test]
    fn reset_after_entanglement() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        t.reset_forced(0);
        assert_eq!(t.prob_one(0), 0.0);
        // Measuring one half of the Bell pair collapsed the partner to the
        // same (forced-zero) outcome.
        assert_eq!(t.prob_one(1), 0.0);
    }

    #[test]
    fn stabilizer_extraction() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        let stabs: Vec<String> = (0..2).map(|i| t.stabilizer(i).to_string()).collect();
        // Generators of the Bell pair: ±XX and ±ZZ in some order.
        let set: std::collections::HashSet<_> = stabs.iter().cloned().collect();
        assert!(
            set.contains("+XX") && set.contains("+ZZ"),
            "unexpected stabilizers {stabs:?}"
        );
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Tableau::new(4);
        t.h(0);
        t.cx(0, 2);
        t.s(2);
        t.h(3);
        t.cx(3, 1);
        for q in 0..4 {
            let first = t.measure(q, &mut rng);
            for _ in 0..3 {
                assert_eq!(t.measure(q, &mut rng), first);
            }
        }
    }

    #[test]
    fn wide_tableau_cross_word() {
        let mut t = Tableau::new(130);
        t.h(0);
        t.cx(0, 129);
        let a = t.measure_forced(0, true);
        let b = t.measure_forced(129, false);
        assert_eq!(a, b);
    }
}
