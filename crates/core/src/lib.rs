//! # HetArch
//!
//! A Rust implementation of **HetArch: Heterogeneous Microarchitectures for
//! Superconducting Quantum Systems** (MICRO 2023): a toolbox for designing
//! and simulating heterogeneous quantum systems built from compute-optimized
//! and storage-optimized superconducting devices.
//!
//! The workspace follows the paper's hierarchy:
//!
//! * [`qsim`] — exact density-matrix simulation (the standard-cell layer),
//! * [`stab`] — stabilizer circuits, a Pauli-frame Monte-Carlo sampler, QEC
//!   codes and decoders (the role Stim plays in the paper),
//! * [`devices`] — the Table 1 device catalog, symbolic layouts, and the
//!   DR1–DR4 design-rule checker,
//! * [`cells`] — the Table 2 standard cells (`Register`, `ParCheck`,
//!   `SeqOp`, `USC`) with density-matrix characterization,
//! * [`modules`] — entanglement distillation, universal error correction,
//!   code teleportation, and the homogeneous baseline,
//! * [`dse`] — design-space exploration: sweeps, Pareto fronts, and the
//!   simulation-cost ledger,
//! * [`exec`] — the sharded Monte-Carlo execution engine: a reusable
//!   [`exec::WorkerPool`] with worker-count-invariant `(seed, shard)`
//!   RNG-stream derivation shared by every shot loop in the workspace,
//! * [`serve`] — a length-prefixed JSON-over-TCP design-space query server:
//!   single-flight coalescing of identical in-flight queries, bounded-queue
//!   backpressure, cooperative cancellation on client disconnect, and
//!   graceful drain-on-shutdown over one shared persistent cell library,
//! * [`obs`] — the observability layer: lock-free counters, wall-time
//!   histograms and deterministic run reports, compiled in only with the
//!   `obs` cargo feature and armed only when `HETARCH_OBS=1`,
//! * [`testkit`] — the verification subsystem: channel/state conformance
//!   checks, statistical assertions with derived tolerances, cross-simulator
//!   differential oracles, and golden-snapshot files.
//!
//! # Quickstart
//!
//! ```
//! use hetarch::prelude::*;
//!
//! // Assemble a design-rule-checked Register cell and characterize it.
//! let lib = CellLibrary::new();
//! let reg = lib.get::<RegisterCell>(
//!     &catalog::fixed_frequency_qubit(),
//!     &catalog::multimode_resonator_3d(),
//! );
//! assert!(reg.load.fidelity > 0.95);
//!
//! // Run a short entanglement-distillation experiment (paper §4.1).
//! let config = DistillConfig::heterogeneous(12.5e-3, 1e6, 42);
//! let report = DistillModule::new(config).run(1e-3);
//! assert!(report.arrivals > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hetarch_cells as cells;
pub use hetarch_devices as devices;
pub use hetarch_dse as dse;
pub use hetarch_exec as exec;
pub use hetarch_modules as modules;
pub use hetarch_obs as obs;
pub use hetarch_qsim as qsim;
pub use hetarch_serve as serve;
pub use hetarch_stab as stab;
pub use hetarch_testkit as testkit;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use hetarch_cells::{
        CacheStats, Cell, CellKind, CellLibrary, CharKey, OpChannel, ParCheckCell, ParCheckChannel,
        RegisterCell, RegisterChannel, SeqOpCell, SeqOpChannel, UscCell, UscChain, UscChannel,
    };
    pub use hetarch_devices::calib::{CalibParams, CalibSnapshot};
    pub use hetarch_devices::catalog;
    pub use hetarch_devices::rules::validate;
    pub use hetarch_devices::{DeviceGraph, DeviceId, DeviceRole, DeviceSpec};
    pub use hetarch_dse::{pareto_front, sweep, Axis, CostLedger, DesignSpace};
    pub use hetarch_exec::rare::{RareConfig, RareOutcome, RareReport};
    pub use hetarch_exec::{shard_seed, shards, Shard, WorkerPool};
    pub use hetarch_modules::baseline::{hom_surface_logical_error, HomModule};
    pub use hetarch_modules::ct::{Architecture, CtConfig, CtModule, CtResult};
    pub use hetarch_modules::distill::{DistillConfig, DistillModule, DistillReport};
    pub use hetarch_modules::uec::{UecModule, UecNoise, UecResult};
    pub use hetarch_modules::EpSource;
    pub use hetarch_qsim::bell::{BellDiagonal, BellState, DejmpsTable, DistillNoise};
    pub use hetarch_qsim::channels::{IdleParams, Kraus1, Kraus2, PauliProbs};
    pub use hetarch_qsim::state::DensityMatrix;
    pub use hetarch_qsim::{fidelity, gates};
    pub use hetarch_stab::circuit::Circuit;
    pub use hetarch_stab::codes::{
        color_17, reed_muller_15, rotated_surface_code, steane, MemoryBasis, StabilizerCode,
        SurfaceMemory, SurfaceNoise,
    };
    pub use hetarch_stab::decoder::{
        DecoderScratch, LookupDecoder, MatchingGraph, UnionFindDecoder,
    };
    pub use hetarch_stab::pauli::{Pauli, PauliString};
    pub use hetarch_stab::tableau::Tableau;
}
