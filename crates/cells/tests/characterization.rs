//! Cross-cutting characterization-cache properties: key injectivity over
//! perturbed device specs, single-flight admission under thread pressure,
//! and bit-identity of cached vs freshly simulated channels.

use proptest::prelude::*;

use hetarch_cells::{Cell, CellKind, CellLibrary, CharKey, ParCheckCell, RegisterCell};
use hetarch_devices::calib::{CalibParams, CalibSnapshot};
use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};
use hetarch_devices::device::{DeviceSpec, GateSpec};

/// Deterministically perturbs one field of the catalog transmon, covering
/// every field class the cache key must discriminate: plain floats,
/// optional floats, optional gate specs, and integer widths.
fn perturbed_spec(field: usize, x: f64) -> DeviceSpec {
    let mut s = fixed_frequency_qubit();
    match field {
        0 => s.t1 = 1e-6 + x * 1e-3,
        1 => s.t2 = 1e-6 + x * 1e-3,
        2 => {
            s.readout_time = if x < 0.25 {
                None
            } else {
                Some(1e-7 + x * 1e-6)
            }
        }
        3 => {
            s.gate_1q = if x < 0.25 {
                None
            } else {
                Some(GateSpec::new(1e-8 + x * 1e-7, 1e-3))
            }
        }
        4 => {
            s.gate_2q = if x < 0.25 {
                None
            } else {
                Some(GateSpec::new(1e-8 + x * 1e-7, 1e-3))
            }
        }
        5 => s.swap = GateSpec::new(1e-8 + x * 1e-7, 1e-4),
        6 => s.capacity = 1 + (x * 8.0) as u32,
        _ => s.max_connectivity = 1 + (x * 6.0) as u32,
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    /// The key function is injective on spec pairs: equal specs map to
    /// equal keys, distinct specs to distinct keys — including the cases
    /// where the specs differ only in *which* optional field is present.
    fn charkey_is_injective_over_perturbed_specs(
        a in (0usize..8, 0.0f64..1.0),
        b in (0usize..8, 0.0f64..1.0),
    ) {
        let spec_a = perturbed_spec(a.0, a.1);
        let spec_b = perturbed_spec(b.0, b.1);
        let partner = on_chip_multimode_resonator();
        let key_a = CharKey::new(CellKind::Register, &spec_a, &partner);
        let key_b = CharKey::new(CellKind::Register, &spec_b, &partner);
        prop_assert_eq!(spec_a == spec_b, key_a == key_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// The pair is ordered: `(a, b)` and `(b, a)` key differently whenever
    /// the specs differ.
    fn charkey_distinguishes_argument_order(a in (0usize..8, 0.0f64..1.0)) {
        let spec = perturbed_spec(a.0, a.1);
        let base = fixed_frequency_qubit();
        if spec != base {
            prop_assert_ne!(
                CharKey::new(CellKind::ParCheck, &spec, &base),
                CharKey::new(CellKind::ParCheck, &base, &spec)
            );
        }
    }
}

/// A calibration-override label drawn from the real cell layout label set
/// (plus one stranger, which keys like any other label).
fn calib_label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("register/compute".to_string()),
        Just("register/storage".to_string()),
        Just("parcheck/a".to_string()),
        Just("seqop/c1".to_string()),
        Just("usc/ancilla".to_string()),
        Just("usc/s2".to_string()),
        Just("somewhere/else".to_string()),
    ]
}

fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (0u32..2, s).prop_map(|(tag, v)| (tag == 1).then_some(v))
}

fn calib_params() -> impl Strategy<Value = CalibParams> {
    (
        opt(1e-6f64..1e-3),
        opt(1e-6f64..1e-3),
        opt(0.0f64..0.1),
        opt(0.0f64..0.1),
        opt(0.0f64..0.1),
        opt(1e-7f64..1e-5),
    )
        .prop_map(
            |(t1, t2, gate_1q_error, gate_2q_error, swap_error, readout_time)| CalibParams {
                t1,
                t2,
                gate_1q_error,
                gate_2q_error,
                swap_error,
                readout_time,
            },
        )
}

fn snapshot() -> impl Strategy<Value = CalibSnapshot> {
    proptest::collection::vec((calib_label(), calib_params()), 0..4).prop_map(|entries| {
        CalibSnapshot {
            device: "fleet-under-test".to_string(),
            taken_at: String::new(),
            qubits: entries.into_iter().collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Calibrated keys are injective over the override set and never alias
    /// the uncalibrated key family: an effectively-empty snapshot keys
    /// exactly like no snapshot at all, equal override maps key equally,
    /// and distinct override maps (with at least one side non-empty) key
    /// distinctly.
    fn charkey_is_injective_over_calib_override_sets(
        snap_a in snapshot(),
        snap_b in snapshot(),
    ) {
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        let legacy = CharKey::new(CellKind::Usc, &c, &s);
        let key_a = CharKey::with_calib(CellKind::Usc, &c, &s, &snap_a);
        let key_b = CharKey::with_calib(CellKind::Usc, &c, &s, &snap_b);

        for (snap, key) in [(&snap_a, &key_a), (&snap_b, &key_b)] {
            if snap.is_empty() {
                prop_assert_eq!(key.clone(), legacy.clone());
            } else {
                prop_assert_ne!(key.clone(), legacy.clone());
                prop_assert_eq!(key.as_bytes()[0] & 0x80, 0x80);
            }
        }

        if (snap_a.is_empty() && snap_b.is_empty()) || snap_a.qubits == snap_b.qubits {
            prop_assert_eq!(key_a, key_b);
        } else {
            prop_assert_ne!(key_a, key_b);
        }
    }
}

#[test]
fn calib_key_ignores_snapshot_metadata() {
    // Two snapshots with identical physics but different provenance are the
    // same design point: `device`/`taken_at` must not reach the key.
    let c = fixed_frequency_qubit();
    let s = on_chip_multimode_resonator();
    let mut snap_a = CalibSnapshot::default();
    snap_a.qubits.insert(
        "usc/s0".to_string(),
        CalibParams {
            swap_error: Some(0.02),
            ..CalibParams::default()
        },
    );
    let mut snap_b = snap_a.clone();
    snap_b.device = "another-fridge".to_string();
    snap_b.taken_at = "2026-08-08T00:00:00Z".to_string();
    assert_eq!(
        CharKey::with_calib(CellKind::Usc, &c, &s, &snap_a),
        CharKey::with_calib(CellKind::Usc, &c, &s, &snap_b),
    );
}

#[test]
fn sixteen_thread_hammer_runs_one_simulation() {
    let lib = CellLibrary::new();
    let a = fixed_frequency_qubit();
    std::thread::scope(|scope| {
        for _ in 0..16 {
            scope.spawn(|| {
                lib.get::<ParCheckCell>(&a, &a);
            });
        }
    });
    let stats = lib.stats();
    assert_eq!(stats.misses, 1, "single-flight admission must hold");
    assert_eq!(stats.hits + stats.inflight_waits, 15);
    assert_eq!(stats.kind(CellKind::ParCheck).misses, 1);
}

#[test]
fn cached_channel_is_bit_identical_to_fresh_characterization() {
    let compute = fixed_frequency_qubit();
    let storage = on_chip_multimode_resonator();
    let lib = CellLibrary::new();
    let cached = lib.get::<RegisterCell>(&compute, &storage);
    let fresh = RegisterCell::build(compute, storage)
        .expect("catalog pair obeys the design rules")
        .characterize();
    assert_eq!(*cached, fresh);
    // PartialEq would accept -0.0 == 0.0; compare the raw bit patterns of
    // the float fields to pin exact reproducibility.
    assert_eq!(
        cached.load.fidelity.to_bits(),
        fresh.load.fidelity.to_bits()
    );
    assert_eq!(
        cached.load.duration.to_bits(),
        fresh.load.duration.to_bits()
    );
    assert_eq!(
        cached.storage_idle.t1.to_bits(),
        fresh.storage_idle.t1.to_bits()
    );
    assert_eq!(
        cached.compute_idle.t2.to_bits(),
        fresh.compute_idle.t2.to_bits()
    );
}
