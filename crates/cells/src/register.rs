//! The `Register` standard cell (paper Table 2, row 1).
//!
//! A high-capacity storage device coupled to a single compute device that
//! manages input/output. Characterized by the load/save (SWAP) time and
//! fidelity, plus the storage idle decay `T_S`.

use hetarch_qsim::backend;
use hetarch_qsim::channels::{IdleParams, Kraus2};
use hetarch_qsim::matrix::Mat;
use hetarch_qsim::state::DensityMatrix;
use serde::{Deserialize, Serialize};

use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::device::{DeviceRole, DeviceSpec};
use hetarch_devices::rules::{validate, Violation};
use hetarch_devices::topology::{DeviceGraph, DeviceId};

use crate::channel::OpChannel;
use crate::probe::average_transfer_fidelity;

/// The abstracted Register channel consumed by module-level models.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegisterChannel {
    /// Moving one qubit between compute and a storage mode.
    pub load: OpChannel,
    /// Idle parameters of a stored qubit (per mode).
    pub storage_idle: IdleParams,
    /// Idle parameters of the compute qubit.
    pub compute_idle: IdleParams,
    /// Number of storage modes.
    pub modes: u32,
}

/// The Register standard cell: one storage device + one compute device.
///
/// # Examples
///
/// ```
/// use hetarch_cells::register::RegisterCell;
/// use hetarch_devices::catalog::{fixed_frequency_qubit, multimode_resonator_3d};
///
/// let cell = RegisterCell::new(fixed_frequency_qubit(), multimode_resonator_3d())?;
/// let ch = cell.characterize();
/// assert!(ch.load.fidelity > 0.95);
/// assert_eq!(ch.modes, 10);
/// # Ok::<(), Vec<hetarch_devices::rules::Violation>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RegisterCell {
    compute: DeviceSpec,
    storage: DeviceSpec,
    layout: DeviceGraph,
    compute_id: DeviceId,
    storage_id: DeviceId,
}

impl RegisterCell {
    /// Builds and design-rule-checks the cell.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations, including role mismatches (the cell
    /// requires one compute and one storage device; neither carries readout
    /// per DR4).
    pub fn new(compute: DeviceSpec, storage: DeviceSpec) -> Result<Self, Vec<Violation>> {
        assert_eq!(
            compute.role,
            DeviceRole::Compute,
            "first device must be a compute device"
        );
        assert_eq!(
            storage.role,
            DeviceRole::Storage,
            "second device must be a storage device"
        );
        let mut layout = DeviceGraph::new();
        let compute_id = layout.add_device("register/compute", compute.clone(), false);
        let storage_id = layout.add_device("register/storage", storage.clone(), false);
        layout.connect(compute_id, storage_id);
        validate(&layout, 0)?;
        Ok(RegisterCell {
            compute,
            storage,
            layout,
            compute_id,
            storage_id,
        })
    }

    /// Builds the cell with a fleet calibration snapshot applied: the
    /// snapshot entries labelled `"register/compute"` and
    /// `"register/storage"` override the corresponding catalog specs
    /// before design-rule checking. An empty snapshot yields the identical
    /// cell [`RegisterCell::new`] would.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations of the calibrated layout.
    pub fn new_with_calib(
        compute: DeviceSpec,
        storage: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        RegisterCell::new(
            calib.apply("register/compute", &compute),
            calib.apply("register/storage", &storage),
        )
    }

    /// The symbolic layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// Compute device id within the layout.
    pub fn compute_id(&self) -> DeviceId {
        self.compute_id
    }

    /// Storage device id within the layout.
    pub fn storage_id(&self) -> DeviceId {
        self.storage_id
    }

    /// The compute device spec.
    pub fn compute(&self) -> &DeviceSpec {
        &self.compute
    }

    /// The storage device spec.
    pub fn storage(&self) -> &DeviceSpec {
        &self.storage
    }

    /// Characterizes the cell by exact density-matrix simulation of the
    /// load operation: a SWAP between the compute qubit and a storage mode
    /// with the storage device's SWAP error, plus idle decay on both ends
    /// for the SWAP duration. The reported fidelity averages the six Pauli
    /// eigenstates.
    pub fn characterize(&self) -> RegisterChannel {
        let swap = self.storage.swap;
        let compute_idle = IdleParams::new(self.compute.t1, self.compute.t2)
            .expect("catalog compute coherence is physical");
        let storage_idle = IdleParams::new(self.storage.t1, self.storage.t2)
            .expect("catalog storage coherence is physical");

        // Channels are hoisted out of the probe closure so each compiles its
        // superoperator kernel once across the six Pauli-eigenstate probes;
        // each channel step is one batched apply over the whole probe set.
        let backend = backend::active();
        let depol_swap =
            Kraus2::depolarizing(swap.error).expect("gate error validated by DeviceSpec");
        let compute_idle_ch = compute_idle
            .channel(swap.time)
            .expect("non-negative duration");
        let storage_idle_ch = storage_idle
            .channel(swap.time)
            .expect("non-negative duration");
        let fidelity = average_transfer_fidelity(|states: &mut [DensityMatrix]| {
            // Qubit 0 = compute (input), qubit 1 = storage mode.
            for rho in states.iter_mut() {
                rho.apply_2q(0, 1, &Mat::swap());
            }
            backend.apply_2q(&depol_swap, states, 0, 1);
            backend.apply_1q(&compute_idle_ch, states, 0);
            backend.apply_1q(&storage_idle_ch, states, 1);
        });

        RegisterChannel {
            load: OpChannel::new("load", swap.time, fidelity, 1),
            storage_idle,
            compute_idle,
            modes: self.storage.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{
        fixed_frequency_qubit, memory_3d, multimode_resonator_3d, on_chip_multimode_resonator,
    };

    #[test]
    fn register_cell_is_rule_compliant() {
        let cell = RegisterCell::new(fixed_frequency_qubit(), multimode_resonator_3d()).unwrap();
        assert_eq!(cell.layout().num_devices(), 2);
    }

    #[test]
    fn load_fidelity_tracks_swap_error() {
        let cell = RegisterCell::new(fixed_frequency_qubit(), multimode_resonator_3d()).unwrap();
        let ch = cell.characterize();
        // Swap error 1e-2: average fidelity should be near 1 - 1e-2 * 4/5
        // (depolarizing average-fidelity relation), minus tiny idle loss.
        assert!(
            ch.load.fidelity > 0.985 && ch.load.fidelity < 0.999,
            "load fidelity {}",
            ch.load.fidelity
        );
        assert_eq!(ch.load.duration, 400e-9);
        assert_eq!(ch.modes, 10);
    }

    #[test]
    fn faster_swap_loses_less_idle_fidelity() {
        // Same storage coherence, swap error and compute device; only the
        // swap duration differs — the slower swap must lose more fidelity
        // to idle decay.
        let mut slow_spec = on_chip_multimode_resonator();
        slow_spec.swap = hetarch_devices::device::GateSpec::new(10e-6, 1e-2);
        let slow = RegisterCell::new(fixed_frequency_qubit(), slow_spec)
            .unwrap()
            .characterize();
        let fast = RegisterCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator())
            .unwrap()
            .characterize();
        assert!(
            fast.load.fidelity > slow.load.fidelity,
            "fast {} vs slow {}",
            fast.load.fidelity,
            slow.load.fidelity
        );
        assert!(fast.load.duration < slow.load.duration);
        // The 3D memory's long coherence compensates its slow swap.
        let mem = RegisterCell::new(fixed_frequency_qubit(), memory_3d())
            .unwrap()
            .characterize();
        assert!(mem.load.fidelity > 0.98);
    }

    #[test]
    fn storage_idle_reflects_device() {
        let cell = RegisterCell::new(fixed_frequency_qubit(), memory_3d()).unwrap();
        let ch = cell.characterize();
        assert_eq!(ch.storage_idle.t1, 25e-3);
        assert_eq!(ch.compute_idle.t1, 300e-6);
    }

    #[test]
    #[should_panic(expected = "must be a storage device")]
    fn wrong_role_is_rejected() {
        let _ = RegisterCell::new(fixed_frequency_qubit(), fixed_frequency_qubit());
    }
}
