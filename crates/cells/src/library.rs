//! The cell library: cached characterizations.
//!
//! Characterizing a cell runs density-matrix simulations; design-space
//! sweeps revisit the same `(T_C, T_S)` points constantly. The library
//! memoizes characterizations and counts hits/misses — the counters feed the
//! DSE cost ledger that reproduces the paper's ~10⁴ simulation-burden
//! reduction claim.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use hetarch_devices::device::DeviceSpec;

use crate::parcheck::{ParCheckCell, ParCheckChannel};
use crate::register::{RegisterCell, RegisterChannel};
use crate::seqop::{SeqOpCell, SeqOpChannel};
use crate::usc::{UscCell, UscChannel};

/// A memoizing cache of cell characterizations.
///
/// # Examples
///
/// ```
/// use hetarch_cells::library::CellLibrary;
/// use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};
///
/// let lib = CellLibrary::new();
/// let a = lib.register(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
/// let b = lib.register(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
/// assert_eq!(a.load.fidelity, b.load.fidelity);
/// assert_eq!(lib.stats().misses, 1);
/// assert_eq!(lib.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct CellLibrary {
    registers: Mutex<HashMap<Key, Arc<RegisterChannel>>>,
    parchecks: Mutex<HashMap<Key, Arc<ParCheckChannel>>>,
    seqops: Mutex<HashMap<Key, Arc<SeqOpChannel>>>,
    uscs: Mutex<HashMap<Key, Arc<UscChannel>>>,
    stats: Mutex<CacheStats>,
}

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Characterizations served from cache.
    pub hits: u64,
    /// Characterizations computed by density-matrix simulation.
    pub misses: u64,
}

type Key = Vec<u64>;

fn key_of(specs: &[&DeviceSpec]) -> Key {
    let mut k = Vec::new();
    for s in specs {
        k.push(s.t1.to_bits());
        k.push(s.t2.to_bits());
        k.push(s.swap.time.to_bits());
        k.push(s.swap.error.to_bits());
        if let Some(g) = s.gate_1q {
            k.push(g.time.to_bits());
            k.push(g.error.to_bits());
        }
        if let Some(g) = s.gate_2q {
            k.push(g.time.to_bits());
            k.push(g.error.to_bits());
        }
        k.push(s.readout_time.unwrap_or(0.0).to_bits());
        k.push(s.capacity as u64);
    }
    k
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        CellLibrary::default()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    fn record(&self, hit: bool) {
        let mut s = self.stats.lock();
        if hit {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
    }

    /// Characterized Register cell for a `(compute, storage)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair violates the design rules (the shipped catalog
    /// devices never do).
    pub fn register(&self, compute: &DeviceSpec, storage: &DeviceSpec) -> Arc<RegisterChannel> {
        let key = key_of(&[compute, storage]);
        if let Some(ch) = self.registers.lock().get(&key) {
            self.record(true);
            return ch.clone();
        }
        let ch = Arc::new(
            RegisterCell::new(compute.clone(), storage.clone())
                .expect("register design rules violated")
                .characterize(),
        );
        self.registers.lock().insert(key, ch.clone());
        self.record(false);
        ch
    }

    /// Characterized ParCheck cell for a compute pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair violates the design rules.
    pub fn parcheck(&self, qubit_a: &DeviceSpec, qubit_b: &DeviceSpec) -> Arc<ParCheckChannel> {
        let key = key_of(&[qubit_a, qubit_b]);
        if let Some(ch) = self.parchecks.lock().get(&key) {
            self.record(true);
            return ch.clone();
        }
        let ch = Arc::new(
            ParCheckCell::new(qubit_a.clone(), qubit_b.clone())
                .expect("parcheck design rules violated")
                .characterize(),
        );
        self.parchecks.lock().insert(key, ch.clone());
        self.record(false);
        ch
    }

    /// Characterized SeqOp cell.
    ///
    /// # Panics
    ///
    /// Panics if the pair violates the design rules.
    pub fn seqop(&self, compute: &DeviceSpec, storage: &DeviceSpec) -> Arc<SeqOpChannel> {
        let key = key_of(&[compute, storage]);
        if let Some(ch) = self.seqops.lock().get(&key) {
            self.record(true);
            return ch.clone();
        }
        let ch = Arc::new(
            SeqOpCell::new(compute.clone(), storage.clone())
                .expect("seqop design rules violated")
                .characterize(),
        );
        self.seqops.lock().insert(key, ch.clone());
        self.record(false);
        ch
    }

    /// Characterized USC cell.
    ///
    /// # Panics
    ///
    /// Panics if the pair violates the design rules.
    pub fn usc(&self, compute: &DeviceSpec, storage: &DeviceSpec) -> Arc<UscChannel> {
        let key = key_of(&[compute, storage]);
        if let Some(ch) = self.uscs.lock().get(&key) {
            self.record(true);
            return ch.clone();
        }
        let ch = Arc::new(
            UscCell::new(compute.clone(), storage.clone())
                .expect("usc design rules violated")
                .characterize(),
        );
        self.uscs.lock().insert(key, ch.clone());
        self.record(false);
        ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{
        fixed_frequency_qubit, multimode_resonator_3d, on_chip_multimode_resonator,
    };

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let lib = CellLibrary::new();
        lib.register(&fixed_frequency_qubit(), &multimode_resonator_3d());
        lib.register(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
        assert_eq!(lib.stats().misses, 2);
        assert_eq!(lib.stats().hits, 0);
    }

    #[test]
    fn repeated_sweep_points_hit_cache() {
        let lib = CellLibrary::new();
        for _ in 0..5 {
            lib.usc(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
        }
        assert_eq!(lib.stats().misses, 1);
        assert_eq!(lib.stats().hits, 4);
    }

    #[test]
    fn coherence_scaling_changes_the_key() {
        let lib = CellLibrary::new();
        for ts_ms in [0.5, 1.0, 2.5, 5.0] {
            let storage = on_chip_multimode_resonator().with_coherence(ts_ms * 1e-3, ts_ms * 1e-3);
            lib.register(&fixed_frequency_qubit(), &storage);
        }
        assert_eq!(lib.stats().misses, 4);
    }

    #[test]
    fn all_cell_types_cacheable() {
        let lib = CellLibrary::new();
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        lib.register(&c, &s);
        lib.parcheck(&c, &c);
        lib.seqop(&c, &s);
        lib.usc(&c, &s);
        assert_eq!(lib.stats().misses, 4);
    }
}
