//! The cell library: one generic, single-flight, persistent cache of cell
//! characterizations.
//!
//! Characterizing a cell runs density-matrix simulations; design-space
//! sweeps revisit the same `(T_C, T_S)` points constantly. The library
//! memoizes characterizations behind the [`Cell`] trait, so every cell kind
//! is served by the same get-or-characterize path:
//!
//! * **Injective keys** — [`CharKey`] encodes the cell kind plus the full
//!   byte encoding of both device specs, with a presence tag before every
//!   `Option` field, so distinct design points can never alias.
//! * **Single-flight admission** — concurrent requests for the same
//!   uncached key run exactly one simulation; the others block on the
//!   in-flight result and share it.
//! * **Persistence** — [`CellLibrary::save`]/[`CellLibrary::load`] write
//!   and warm-start the cache across processes.
//! * **Observability** — [`CacheStats`] counts hits, misses and in-flight
//!   waits per cell kind and accumulates the simulation seconds avoided,
//!   feeding the DSE cost ledger that reproduces the paper's ~10⁴
//!   simulation-burden reduction claim.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use hetarch_obs as obs;
use parking_lot::Mutex;
use serde::Serialize;

use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::device::DeviceSpec;

use crate::cell::{Cell, CellKind};
use crate::parcheck::ParCheckChannel;
use crate::register::RegisterChannel;
use crate::seqop::SeqOpChannel;
use crate::usc::UscChannel;

// Workspace-wide cache metrics, aggregated over every `CellLibrary`
// instance (the per-instance view stays available via
// [`CellLibrary::stats`]). Indexed by `CellKind::index()` (tag order).
// No-ops unless the `obs` feature is on and `HETARCH_OBS=1`.
static OBS_HITS: [obs::Counter; 4] = [
    obs::Counter::new("cells.register.hits"),
    obs::Counter::new("cells.parcheck.hits"),
    obs::Counter::new("cells.seqop.hits"),
    obs::Counter::new("cells.usc.hits"),
];
static OBS_MISSES: [obs::Counter; 4] = [
    obs::Counter::new("cells.register.misses"),
    obs::Counter::new("cells.parcheck.misses"),
    obs::Counter::new("cells.seqop.misses"),
    obs::Counter::new("cells.usc.misses"),
];
static OBS_WAITS: [obs::Counter; 4] = [
    obs::Counter::new("cells.register.inflight_waits"),
    obs::Counter::new("cells.parcheck.inflight_waits"),
    obs::Counter::new("cells.seqop.inflight_waits"),
    obs::Counter::new("cells.usc.inflight_waits"),
];
static OBS_SIM_SECONDS_RUN: obs::Ledger = obs::Ledger::new("cells.sim_seconds_run");
static OBS_SIM_SECONDS_SAVED: obs::Ledger = obs::Ledger::new("cells.sim_seconds_saved");
static OBS_CHARACTERIZE_NS: obs::Histogram = obs::Histogram::new("cells.characterize_ns");

/// Injective cache key for one characterization request.
///
/// The key is the cell-kind tag followed by the byte encoding of both
/// [`DeviceSpec`]s in the workspace binary format. That format
/// length-prefixes strings and collections and writes a presence tag before
/// every `Option` field, so two specs that differ only in *which* optional
/// field is set get distinct keys — the collision the old ad-hoc
/// f64-bits key allowed by concatenating optional fields untagged.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CharKey(Vec<u8>);

impl CharKey {
    /// Builds the key for characterizing a `kind` cell on `(a, b)`.
    pub fn new(kind: CellKind, a: &DeviceSpec, b: &DeviceSpec) -> Self {
        let mut s = serde::Serializer::new();
        s.write_u8(kind.tag());
        a.serialize(&mut s);
        b.serialize(&mut s);
        CharKey(s.into_bytes())
    }

    /// Builds the key for characterizing a `kind` cell on `(a, b)` under a
    /// calibration snapshot.
    ///
    /// An empty snapshot produces exactly [`CharKey::new`]'s key, so
    /// calibration-free callers keep hitting (and warm-starting from) the
    /// entries they always produced. A non-empty snapshot sets the high bit
    /// of the leading kind tag (plain tags are ≤ 3) and appends the
    /// per-label override map, so calibrated keys can never collide with
    /// uncalibrated ones and stay injective over the override set. Snapshot
    /// metadata (`device`, `taken_at`) is deliberately excluded: two
    /// snapshots with identical physics are the same design point.
    pub fn with_calib(
        kind: CellKind,
        a: &DeviceSpec,
        b: &DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Self {
        if calib.is_empty() {
            return CharKey::new(kind, a, b);
        }
        let mut s = serde::Serializer::new();
        s.write_u8(0x80 | kind.tag());
        a.serialize(&mut s);
        b.serialize(&mut s);
        calib.qubits.serialize(&mut s);
        CharKey(s.into_bytes())
    }

    /// The encoded key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Per-cell-kind cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KindStats {
    /// Characterizations served from a completed cache entry.
    pub hits: u64,
    /// Characterizations computed by density-matrix simulation.
    pub misses: u64,
    /// Requests that piggybacked on a simulation already in flight.
    pub inflight_waits: u64,
}

/// Cache counters, overall and per cell kind.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Total characterizations served from cache.
    pub hits: u64,
    /// Total characterizations computed by simulation.
    pub misses: u64,
    /// Total requests that piggybacked on an in-flight simulation.
    pub inflight_waits: u64,
    /// Wall-clock seconds spent actually simulating (misses).
    pub sim_seconds_run: f64,
    /// Wall-clock simulation seconds avoided by cache hits — the quantity
    /// the DSE cost ledger credits for characterization reuse.
    pub sim_seconds_saved: f64,
    by_kind: [KindStats; 4],
}

impl CacheStats {
    /// Counters for one cell kind.
    pub fn kind(&self, kind: CellKind) -> KindStats {
        self.by_kind[kind.index()]
    }
}

type Payload = Arc<dyn Any + Send + Sync>;

/// A completed characterization: the type-erased channel plus bookkeeping.
#[derive(Clone)]
struct ReadyEntry {
    kind: CellKind,
    sim_seconds: f64,
    payload: Payload,
}

/// `None` means the in-flight characterization panicked; retry admission.
type Flight = Arc<OnceLock<Option<ReadyEntry>>>;

enum Slot {
    Ready(ReadyEntry),
    InFlight(Flight),
}

/// Removes the in-flight slot and wakes waiters if the leader unwinds
/// before publishing, so a panicking characterization never wedges its key.
struct FlightGuard<'a> {
    entries: &'a Mutex<HashMap<CharKey, Slot>>,
    key: &'a CharKey,
    flight: &'a Flight,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.entries.lock().remove(self.key);
            let _ = self.flight.set(None);
        }
    }
}

/// What one admission attempt resolved to.
enum Claim {
    Done(ReadyEntry),
    Wait(Flight),
    Lead(Flight),
}

fn downcast<C: Cell>(entry: &ReadyEntry) -> Arc<C::Channel> {
    entry
        .payload
        .clone()
        .downcast::<C::Channel>()
        .expect("cache entry payload matches its key's cell kind")
}

const MAGIC: &[u8] = b"hetarch-cell-library-v1";

/// A memoizing, thread-safe, persistable cache of cell characterizations.
///
/// # Examples
///
/// ```
/// use hetarch_cells::library::CellLibrary;
/// use hetarch_cells::RegisterCell;
/// use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};
///
/// let lib = CellLibrary::new();
/// let a = lib.get::<RegisterCell>(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
/// let b = lib.get::<RegisterCell>(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
/// assert_eq!(a.load.fidelity, b.load.fidelity);
/// assert_eq!(lib.stats().misses, 1);
/// assert_eq!(lib.stats().hits, 1);
/// assert!(lib.stats().sim_seconds_saved > 0.0);
/// ```
#[derive(Default)]
pub struct CellLibrary {
    entries: Mutex<HashMap<CharKey, Slot>>,
    stats: Mutex<CacheStats>,
}

impl fmt::Debug for CellLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellLibrary")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        CellLibrary::default()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Number of completed characterizations currently cached.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// True if no characterization has completed or been loaded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The single get-or-characterize path behind every cell kind.
    ///
    /// Returns the cached channel if `(C::KIND, a, b)` was characterized
    /// before. Otherwise builds the cell and runs the density-matrix
    /// characterization exactly once, even under concurrency: other threads
    /// requesting the same key while the simulation is in flight block on
    /// it and share its result.
    ///
    /// # Panics
    ///
    /// Panics if the pair violates the cell's design rules (the shipped
    /// catalog devices never do).
    pub fn get<C: Cell>(&self, a: &DeviceSpec, b: &DeviceSpec) -> Arc<C::Channel> {
        let key = CharKey::new(C::KIND, a, b);
        self.get_inner::<C>(key, || C::build(a.clone(), b.clone()))
    }

    /// [`CellLibrary::get`] with per-slot calibration overrides applied via
    /// [`Cell::build_with_calib`]. An empty snapshot shares the same cache
    /// key (and hence entries) as [`CellLibrary::get`]; a non-empty snapshot
    /// gets its own injective key, so the same `(a, b)` under different
    /// fleet calibrations never alias.
    ///
    /// # Panics
    ///
    /// Panics if the calibrated pair violates the cell's design rules.
    pub fn get_with_calib<C: Cell>(
        &self,
        a: &DeviceSpec,
        b: &DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Arc<C::Channel> {
        let key = CharKey::with_calib(C::KIND, a, b, calib);
        self.get_inner::<C>(key, || C::build_with_calib(a.clone(), b.clone(), calib))
    }

    /// The admission loop shared by [`CellLibrary::get`] and
    /// [`CellLibrary::get_with_calib`]. `build` may run more than once if a
    /// previous leader for the same key panicked and admission is retried.
    fn get_inner<C: Cell>(
        &self,
        key: CharKey,
        build: impl Fn() -> Result<C, Vec<hetarch_devices::rules::Violation>>,
    ) -> Arc<C::Channel> {
        loop {
            let claim = {
                let mut map = self.entries.lock();
                match map.get(&key) {
                    Some(Slot::Ready(entry)) => Claim::Done(entry.clone()),
                    Some(Slot::InFlight(flight)) => Claim::Wait(flight.clone()),
                    None => {
                        let flight: Flight = Arc::new(OnceLock::new());
                        map.insert(key.clone(), Slot::InFlight(flight.clone()));
                        Claim::Lead(flight)
                    }
                }
            };
            match claim {
                Claim::Done(entry) => {
                    self.record_hit(C::KIND, entry.sim_seconds);
                    return downcast::<C>(&entry);
                }
                Claim::Wait(flight) => match flight.wait() {
                    Some(entry) => {
                        self.record_wait(C::KIND);
                        return downcast::<C>(entry);
                    }
                    // The leader panicked and its slot was cleaned up;
                    // retry admission from scratch.
                    None => continue,
                },
                Claim::Lead(flight) => {
                    let mut guard = FlightGuard {
                        entries: &self.entries,
                        key: &key,
                        flight: &flight,
                        armed: true,
                    };
                    let started = Instant::now();
                    let span = obs::span!(OBS_CHARACTERIZE_NS);
                    let cell = build().unwrap_or_else(|violations| {
                        panic!("{} design rules violated: {violations:?}", C::KIND)
                    });
                    let channel = Arc::new(cell.characterize());
                    drop(span);
                    let payload: Payload = channel.clone();
                    let entry = ReadyEntry {
                        kind: C::KIND,
                        sim_seconds: started.elapsed().as_secs_f64(),
                        payload,
                    };
                    self.entries
                        .lock()
                        .insert(key.clone(), Slot::Ready(entry.clone()));
                    let sim_seconds = entry.sim_seconds;
                    let _ = flight.set(Some(entry));
                    guard.armed = false;
                    self.record_miss(C::KIND, sim_seconds);
                    return channel;
                }
            }
        }
    }

    /// Persists every completed characterization to `path` in the
    /// workspace binary format. In-flight entries are skipped and counters
    /// are not saved; a loaded library starts with fresh statistics.
    ///
    /// The write is atomic: bytes go to a temporary file in the same
    /// directory which is then renamed over `path`, so a concurrent or
    /// later [`CellLibrary::load`] observes either the previous complete
    /// file or the new one — never a torn half-write (e.g. when a serve
    /// process is killed mid-drain).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut ready: Vec<(CharKey, ReadyEntry)> = self
            .entries
            .lock()
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Ready(e) => Some((k.clone(), e.clone())),
                Slot::InFlight(_) => None,
            })
            .collect();
        // Sort by key bytes so the file is deterministic regardless of
        // insertion order.
        ready.sort_by(|x, y| x.0 .0.cmp(&y.0 .0));
        let mut s = serde::Serializer::new();
        s.write_bytes(MAGIC);
        s.write_u64(ready.len() as u64);
        for (key, entry) in &ready {
            s.write_u8(entry.kind.tag());
            s.write_bytes(&key.0);
            s.write_f64(entry.sim_seconds);
            s.write_bytes(&encode_payload(entry));
        }
        let path = path.as_ref();
        // The temp file must live in the target's directory: rename is only
        // atomic within one filesystem, and std::env::temp_dir may be on
        // another one.
        let tmp = path.with_file_name(format!(
            ".{}.tmp-{}",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "cell-library".to_string()),
            std::process::id()
        ));
        std::fs::write(&tmp, s.into_bytes())
            .and_then(|()| std::fs::rename(&tmp, path))
            .inspect_err(|_| {
                std::fs::remove_file(&tmp).ok();
            })
    }

    /// Loads a library persisted by [`CellLibrary::save`]. Loaded entries
    /// count neither as hits nor misses until they are requested again.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a malformed or truncated file is
    /// reported as [`io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<CellLibrary> {
        let bytes = std::fs::read(path)?;
        Self::from_saved_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn from_saved_bytes(bytes: &[u8]) -> Result<CellLibrary, serde::Error> {
        let mut d = serde::Deserializer::new(bytes);
        // A bad header should say "not a cell-library file", not whatever
        // EOF the length-prefixed read happens to hit first.
        if d.read_bytes().ok().as_deref() != Some(MAGIC) {
            return Err(serde::Error::new("not a cell-library file"));
        }
        let n = d.read_u64()?;
        let mut map = HashMap::new();
        for _ in 0..n {
            let kind = CellKind::from_tag(d.read_u8()?)
                .ok_or_else(|| serde::Error::new("unknown cell kind tag"))?;
            let key = CharKey(d.read_bytes()?);
            let sim_seconds = d.read_f64()?;
            let payload = decode_payload(kind, &d.read_bytes()?)?;
            map.insert(
                key,
                Slot::Ready(ReadyEntry {
                    kind,
                    sim_seconds,
                    payload,
                }),
            );
        }
        if !d.is_empty() {
            return Err(serde::Error::new("trailing bytes in cell-library file"));
        }
        Ok(CellLibrary {
            entries: Mutex::new(map),
            stats: Mutex::new(CacheStats::default()),
        })
    }

    fn record_hit(&self, kind: CellKind, sim_seconds: f64) {
        let mut s = self.stats.lock();
        s.hits += 1;
        s.sim_seconds_saved += sim_seconds;
        s.by_kind[kind.index()].hits += 1;
        OBS_HITS[kind.index()].inc();
        OBS_SIM_SECONDS_SAVED.add(sim_seconds);
    }

    fn record_miss(&self, kind: CellKind, sim_seconds: f64) {
        let mut s = self.stats.lock();
        s.misses += 1;
        s.sim_seconds_run += sim_seconds;
        s.by_kind[kind.index()].misses += 1;
        OBS_MISSES[kind.index()].inc();
        OBS_SIM_SECONDS_RUN.add(sim_seconds);
    }

    fn record_wait(&self, kind: CellKind) {
        let mut s = self.stats.lock();
        s.inflight_waits += 1;
        s.by_kind[kind.index()].inflight_waits += 1;
        OBS_WAITS[kind.index()].inc();
    }
}

fn encode_payload(entry: &ReadyEntry) -> Vec<u8> {
    fn bytes<T: Serialize + 'static>(payload: &Payload) -> Vec<u8> {
        serde::to_bytes(
            payload
                .downcast_ref::<T>()
                .expect("cache entry payload matches its recorded kind"),
        )
    }
    match entry.kind {
        CellKind::Register => bytes::<RegisterChannel>(&entry.payload),
        CellKind::ParCheck => bytes::<ParCheckChannel>(&entry.payload),
        CellKind::SeqOp => bytes::<SeqOpChannel>(&entry.payload),
        CellKind::Usc => bytes::<UscChannel>(&entry.payload),
    }
}

fn decode_payload(kind: CellKind, bytes: &[u8]) -> Result<Payload, serde::Error> {
    Ok(match kind {
        CellKind::Register => Arc::new(serde::from_bytes::<RegisterChannel>(bytes)?),
        CellKind::ParCheck => Arc::new(serde::from_bytes::<ParCheckChannel>(bytes)?),
        CellKind::SeqOp => Arc::new(serde::from_bytes::<SeqOpChannel>(bytes)?),
        CellKind::Usc => Arc::new(serde::from_bytes::<UscChannel>(bytes)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parcheck::ParCheckCell;
    use crate::register::RegisterCell;
    use crate::seqop::SeqOpCell;
    use crate::usc::UscCell;
    use hetarch_devices::calib::CalibParams;
    use hetarch_devices::catalog::{
        fixed_frequency_qubit, multimode_resonator_3d, on_chip_multimode_resonator,
    };
    use hetarch_devices::device::GateSpec;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hetarch-{}-{}.bin", name, std::process::id()))
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let lib = CellLibrary::new();
        lib.get::<RegisterCell>(&fixed_frequency_qubit(), &multimode_resonator_3d());
        lib.get::<RegisterCell>(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
        assert_eq!(lib.stats().misses, 2);
        assert_eq!(lib.stats().hits, 0);
    }

    #[test]
    fn repeated_sweep_points_hit_cache() {
        let lib = CellLibrary::new();
        for _ in 0..5 {
            lib.get::<UscCell>(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
        }
        let stats = lib.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.kind(CellKind::Usc).hits, 4);
        assert_eq!(stats.kind(CellKind::Register).hits, 0);
        assert!(stats.sim_seconds_saved > 0.0);
    }

    #[test]
    fn coherence_scaling_changes_the_key() {
        let lib = CellLibrary::new();
        for ts_ms in [0.5, 1.0, 2.5, 5.0] {
            let storage = on_chip_multimode_resonator().with_coherence(ts_ms * 1e-3, ts_ms * 1e-3);
            lib.get::<RegisterCell>(&fixed_frequency_qubit(), &storage);
        }
        assert_eq!(lib.stats().misses, 4);
    }

    #[test]
    fn all_cell_types_cacheable() {
        let lib = CellLibrary::new();
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        lib.get::<RegisterCell>(&c, &s);
        lib.get::<ParCheckCell>(&c, &c);
        lib.get::<SeqOpCell>(&c, &s);
        lib.get::<UscCell>(&c, &s);
        let stats = lib.stats();
        assert_eq!(stats.misses, 4);
        for kind in CellKind::ALL {
            assert_eq!(stats.kind(kind).misses, 1, "{kind}");
        }
        assert_eq!(lib.len(), 4);
    }

    /// Regression: the old `Vec<u64>` key concatenated `gate_1q`/`gate_2q`
    /// without presence tags, so a spec with only `gate_1q` set collided
    /// with one carrying the same numbers in `gate_2q`; `readout_time:
    /// Some(0.0)` likewise collided with `None`.
    #[test]
    fn optional_field_presence_is_part_of_the_key() {
        let c = fixed_frequency_qubit();
        let mut only_1q = on_chip_multimode_resonator();
        only_1q.gate_1q = Some(GateSpec::new(40e-9, 1e-3));
        only_1q.gate_2q = None;
        let mut only_2q = only_1q.clone();
        only_2q.gate_1q = None;
        only_2q.gate_2q = Some(GateSpec::new(40e-9, 1e-3));
        assert_ne!(
            CharKey::new(CellKind::Register, &c, &only_1q),
            CharKey::new(CellKind::Register, &c, &only_2q),
        );

        let mut zero_readout = on_chip_multimode_resonator();
        zero_readout.readout_time = Some(0.0);
        let mut no_readout = zero_readout.clone();
        no_readout.readout_time = None;
        assert_ne!(
            CharKey::new(CellKind::Register, &c, &zero_readout),
            CharKey::new(CellKind::Register, &c, &no_readout),
        );
    }

    #[test]
    fn cell_kind_is_part_of_the_key() {
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        assert_ne!(
            CharKey::new(CellKind::Register, &c, &s),
            CharKey::new(CellKind::SeqOp, &c, &s),
        );
    }

    #[test]
    fn concurrent_requests_are_single_flight() {
        let lib = CellLibrary::new();
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    lib.get::<UscCell>(&c, &s);
                });
            }
        });
        let stats = lib.stats();
        assert_eq!(stats.misses, 1, "exactly one simulation ran");
        assert_eq!(stats.hits + stats.inflight_waits, 15);
        assert_eq!(stats.kind(CellKind::Usc).misses, 1);
    }

    #[test]
    fn save_load_round_trips_and_warm_starts() {
        let lib = CellLibrary::new();
        let c = fixed_frequency_qubit();
        let storages = [multimode_resonator_3d(), on_chip_multimode_resonator()];
        for s in &storages {
            lib.get::<RegisterCell>(&c, s);
            lib.get::<UscCell>(&c, s);
        }
        let path = temp_path("library-roundtrip");
        lib.save(&path).expect("save cache");
        let warm = CellLibrary::load(&path).expect("load cache");
        std::fs::remove_file(&path).ok();
        assert_eq!(warm.len(), 4);
        // Repeating the sweep on the warm library runs zero new simulations
        // and reproduces the channels exactly.
        for s in &storages {
            let fresh = lib.get::<RegisterCell>(&c, s);
            let loaded = warm.get::<RegisterCell>(&c, s);
            assert_eq!(*fresh, *loaded);
            warm.get::<UscCell>(&c, s);
        }
        let stats = warm.stats();
        assert_eq!(stats.misses, 0, "warm start re-simulates nothing");
        assert_eq!(stats.hits, 4);
        assert!(stats.sim_seconds_saved > 0.0);
    }

    #[test]
    fn calibrated_requests_get_their_own_entries() {
        let lib = CellLibrary::new();
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        let baseline = lib.get::<RegisterCell>(&c, &s);

        // An empty snapshot is the same design point: it shares the
        // uncalibrated entry instead of re-simulating.
        let same = lib.get_with_calib::<RegisterCell>(&c, &s, &CalibSnapshot::default());
        assert_eq!(*baseline, *same);
        assert_eq!(lib.stats().misses, 1);
        assert_eq!(lib.stats().hits, 1);

        // Degraded storage coherence must reach the characterization: a new
        // entry with a measurably worse channel.
        let mut degraded = CalibSnapshot::default();
        degraded.qubits.insert(
            "register/storage".to_string(),
            CalibParams {
                t1: Some(20e-6),
                t2: Some(20e-6),
                ..CalibParams::default()
            },
        );
        let worse = lib.get_with_calib::<RegisterCell>(&c, &s, &degraded);
        assert_eq!(lib.stats().misses, 2);
        assert_eq!(worse.storage_idle.t1, 20e-6);
        assert!(
            worse.load.fidelity < baseline.load.fidelity,
            "degraded {} vs baseline {}",
            worse.load.fidelity,
            baseline.load.fidelity
        );

        // The same snapshot is the same design point (cache hit); a
        // different one is not (fresh miss).
        lib.get_with_calib::<RegisterCell>(&c, &s, &degraded);
        assert_eq!(lib.stats().hits, 2);
        let mut other = degraded.clone();
        let params = other.qubits.get_mut("register/storage").unwrap();
        params.t1 = Some(40e-6);
        params.t2 = Some(40e-6);
        lib.get_with_calib::<RegisterCell>(&c, &s, &other);
        assert_eq!(lib.stats().misses, 3);
    }

    #[test]
    fn calibrated_entries_survive_save_load() {
        let lib = CellLibrary::new();
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        let mut snap = CalibSnapshot::default();
        snap.qubits.insert(
            "usc/s1".to_string(),
            CalibParams {
                swap_error: Some(0.05),
                ..CalibParams::default()
            },
        );
        let fresh = lib.get_with_calib::<UscCell>(&c, &s, &snap);
        let path = temp_path("library-calib-roundtrip");
        lib.save(&path).expect("save cache");
        let warm = CellLibrary::load(&path).expect("load cache");
        std::fs::remove_file(&path).ok();
        let loaded = warm.get_with_calib::<UscCell>(&c, &s, &snap);
        assert_eq!(*fresh, *loaded);
        assert_eq!(warm.stats().misses, 0, "warm start re-simulates nothing");
        assert_eq!(warm.stats().hits, 1);
    }

    /// Regression: `save` used to `fs::write` the target path directly, so
    /// a reader racing the writer (or a crash mid-write) could observe a
    /// truncated file. With write-to-temp + rename, every `load` observes a
    /// complete file.
    #[test]
    fn save_never_exposes_a_partial_file() {
        let lib = CellLibrary::new();
        lib.get::<RegisterCell>(&fixed_frequency_qubit(), &on_chip_multimode_resonator());
        let path = temp_path("library-atomic");
        lib.save(&path).expect("initial save");
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for _ in 0..200 {
                    lib.save(&path).expect("concurrent save");
                }
            });
            while !writer.is_finished() {
                let loaded = CellLibrary::load(&path).expect("load must never see a torn file");
                assert_eq!(loaded.len(), 1);
            }
        });
        // The temp file is transient: nothing but the target remains.
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&name) && *n != name)
            .collect();
        std::fs::remove_file(&path).ok();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    }

    #[test]
    fn load_rejects_garbage() {
        let path = temp_path("library-garbage");
        std::fs::write(&path, b"not a cache").unwrap();
        let err = CellLibrary::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn failed_build_does_not_wedge_the_key() {
        let lib = CellLibrary::new();
        let storage = on_chip_multimode_resonator();
        // A Register wants (compute, storage); passing storage first trips
        // the role assertion inside the build and unwinds mid-flight.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lib.get::<RegisterCell>(&storage, &storage);
        }));
        assert!(attempt.is_err());
        // The key was released: retrying panics again rather than
        // deadlocking on a wedged in-flight slot...
        let retry = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lib.get::<RegisterCell>(&storage, &storage);
        }));
        assert!(retry.is_err());
        // ...and valid requests still succeed.
        lib.get::<RegisterCell>(&fixed_frequency_qubit(), &storage);
        assert_eq!(lib.stats().misses, 1);
    }
}
