//! The Universal Stabilizer Cell `USC` and its chaining extension `USC-EXT`
//! (paper Table 2 row 4 and §4.2.2, Fig. 8).
//!
//! Three Register subcells arranged around a central readout-equipped
//! compute device (the stabilizer ancilla). Checks are *serialized*: data
//! qubits are swapped out of storage, entangled with the ancilla, and
//! swapped back — trading time (and hence demanding long `T_S`) for
//! topology-agnostic error correction.

use hetarch_qsim::backend;
use hetarch_qsim::channels::{IdleParams, Kraus1, Kraus2};
use hetarch_qsim::gates;
use hetarch_qsim::measure::project_z;
use hetarch_qsim::state::DensityMatrix;
use serde::{Deserialize, Serialize};

use hetarch_devices::device::{DeviceRole, DeviceSpec, GateSpec};
use hetarch_devices::rules::{validate, Violation};
use hetarch_devices::topology::{DeviceGraph, DeviceId};

use crate::channel::OpChannel;

/// The abstracted USC cost/fidelity model consumed by the UEC module.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UscChannel {
    /// Register load/store gate (storage SWAP).
    pub swap: GateSpec,
    /// Compute–ancilla two-qubit gate.
    pub cx: GateSpec,
    /// Single-qubit gate.
    pub gate_1q: GateSpec,
    /// Ancilla readout duration.
    pub readout_time: f64,
    /// Storage idle parameters (per mode).
    pub storage_idle: IdleParams,
    /// Compute/ancilla idle parameters.
    pub compute_idle: IdleParams,
    /// Total storage capacity of the cell (modes × registers).
    pub capacity: u32,
    /// Number of Register subcells (qubits addressable in parallel).
    pub registers: u32,
    /// DM-characterized weight-2 Z-check channel.
    pub check2: OpChannel,
}

impl UscChannel {
    /// Wall-clock duration of a serialized weight-`w` stabilizer check:
    /// parallel swap-out (grouped by register), serial CXs to the shared
    /// ancilla, parallel swap-back, readout.
    pub fn check_duration(&self, weight: usize) -> f64 {
        let groups = weight.div_ceil(self.registers as usize) as f64;
        2.0 * groups * self.swap.time + weight as f64 * self.cx.time + self.readout_time
    }
}

/// The USC standard cell (three Registers + central ancilla).
///
/// # Examples
///
/// ```
/// use hetarch_cells::usc::UscCell;
/// use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};
///
/// let cell = UscCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator())?;
/// let ch = cell.characterize();
/// assert_eq!(ch.capacity, 30);
/// assert!(ch.check2.fidelity > 0.9);
/// # Ok::<(), Vec<hetarch_devices::rules::Violation>>(())
/// ```
#[derive(Clone, Debug)]
pub struct UscCell {
    compute: DeviceSpec,
    storage: DeviceSpec,
    layout: DeviceGraph,
    ancilla: DeviceId,
    registers: Vec<(DeviceId, DeviceId)>, // (storage, compute) pairs
}

impl UscCell {
    /// Builds and design-rule-checks the USC.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new(compute: DeviceSpec, storage: DeviceSpec) -> Result<Self, Vec<Violation>> {
        Self::with_registers(compute, storage, 3)
    }

    /// Builds a USC variant with `n_registers ∈ 1..=3` Register subcells
    /// (the paper notes four would exhaust the ancilla's connectivity, DR1).
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn with_registers(
        compute: DeviceSpec,
        storage: DeviceSpec,
        n_registers: usize,
    ) -> Result<Self, Vec<Violation>> {
        assert_eq!(compute.role, DeviceRole::Compute);
        assert_eq!(storage.role, DeviceRole::Storage);
        assert!(
            (1..=3).contains(&n_registers),
            "USC supports 1–3 registers (4 would exhaust DR1)"
        );
        let mut layout = DeviceGraph::new();
        let ancilla = layout.add_device("usc/ancilla", compute.clone(), true);
        let mut registers = Vec::new();
        for i in 0..n_registers {
            let s = layout.add_device(format!("usc/s{i}"), storage.clone(), false);
            let c = layout.add_device(format!("usc/c{i}"), compute.clone(), false);
            layout.connect(s, c);
            layout.connect(c, ancilla);
            registers.push((s, c));
        }
        validate(&layout, 1)?;
        Ok(UscCell {
            compute,
            storage,
            layout,
            ancilla,
            registers,
        })
    }

    /// The symbolic layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// The central ancilla id.
    pub fn ancilla(&self) -> DeviceId {
        self.ancilla
    }

    /// The (storage, compute) register pairs.
    pub fn registers(&self) -> &[(DeviceId, DeviceId)] {
        &self.registers
    }

    /// Characterizes the cell. The weight-2 Z-check is simulated exactly on
    /// five qubits (two storage modes, two register computes, the ancilla):
    /// swap out, serial CXs onto the ancilla, swap back, measure — with gate
    /// depolarizing and idle decay at every phase. Fidelity is the
    /// probability of a correct syndrome bit with all data preserved,
    /// averaged over the four classical inputs.
    pub fn characterize(&self) -> UscChannel {
        let g1 = self.compute.gate_1q.expect("compute defines 1q gates");
        let g2 = self.compute.gate_2q.expect("compute defines 2q gates");
        let swap = self.storage.swap;
        let t_read = self.compute.readout_time.expect("compute has readout");
        let storage_idle =
            IdleParams::new(self.storage.t1, self.storage.t2).expect("physical coherence");
        let compute_idle =
            IdleParams::new(self.compute.t1, self.compute.t2).expect("physical coherence");

        let depol_swap = Kraus2::depolarizing(swap.error).expect("validated");
        let depol_g2 = Kraus2::depolarizing(g2.error).expect("validated");

        // Idle channels are built once per distinct phase duration and reused
        // across inputs and qubits, so each compiles its superoperator kernel
        // exactly once.
        let idle_pair = |t: f64| {
            (
                storage_idle.channel(t).expect("valid"),
                compute_idle.channel(t).expect("valid"),
            )
        };
        let idle_swap = idle_pair(swap.time);
        let idle_g2 = idle_pair(g2.time);
        let idle_read = idle_pair(t_read);

        // Qubits: 0 = s0 mode, 1 = c0, 2 = s1 mode, 3 = c1, 4 = ancilla.
        // All four classical inputs run the same circuit, so they are
        // materialized up front and every channel step is one batched
        // backend apply over the whole probe set.
        let backend = backend::active();
        let idle_all = |states: &mut [DensityMatrix],
                        (storage_ch, compute_ch): &(Kraus1, Kraus1)| {
            for q in [0usize, 2] {
                backend.apply_1q(storage_ch, states, q);
            }
            for q in [1usize, 3, 4] {
                backend.apply_1q(compute_ch, states, q);
            }
        };
        let mut states: Vec<DensityMatrix> = (0..4usize)
            .map(|input| {
                let mut rho = DensityMatrix::zero_state(5);
                if input & 1 == 1 {
                    gates::x(&mut rho, 0);
                }
                if input & 2 == 2 {
                    gates::x(&mut rho, 2);
                }
                rho
            })
            .collect();
        // Swap out (parallel: data live in different registers).
        for rho in states.iter_mut() {
            gates::swap(rho, 0, 1);
            gates::swap(rho, 2, 3);
        }
        backend.apply_2q(&depol_swap, &mut states, 0, 1);
        backend.apply_2q(&depol_swap, &mut states, 2, 3);
        idle_all(&mut states, &idle_swap);
        // Serial CXs to ancilla.
        for rho in states.iter_mut() {
            gates::cnot(rho, 1, 4);
        }
        backend.apply_2q(&depol_g2, &mut states, 1, 4);
        idle_all(&mut states, &idle_g2);
        for rho in states.iter_mut() {
            gates::cnot(rho, 3, 4);
        }
        backend.apply_2q(&depol_g2, &mut states, 3, 4);
        idle_all(&mut states, &idle_g2);
        // Swap back.
        for rho in states.iter_mut() {
            gates::swap(rho, 0, 1);
            gates::swap(rho, 2, 3);
        }
        backend.apply_2q(&depol_swap, &mut states, 0, 1);
        backend.apply_2q(&depol_swap, &mut states, 2, 3);
        idle_all(&mut states, &idle_swap);
        // Readout window.
        idle_all(&mut states, &idle_read);

        let mut total = 0.0;
        for (input, rho) in states.iter().enumerate() {
            let parity = ((input & 1) ^ ((input >> 1) & 1)) == 1;
            let p_syndrome = {
                let mut b = rho.clone();
                project_z(&mut b, 4, parity)
            };
            let p_data0 = {
                let mut b = rho.clone();
                project_z(&mut b, 0, input & 1 == 1)
            };
            let p_data1 = {
                let mut b = rho.clone();
                project_z(&mut b, 2, input & 2 == 2)
            };
            total += p_syndrome * p_data0 * p_data1;
        }
        let fidelity = (total / 4.0).clamp(0.0, 1.0);
        let duration = 2.0 * swap.time + 2.0 * g2.time + t_read;

        UscChannel {
            swap,
            cx: g2,
            gate_1q: g1,
            readout_time: t_read,
            storage_idle,
            compute_idle,
            capacity: self.storage.capacity * self.registers.len() as u32,
            registers: self.registers.len() as u32,
            check2: OpChannel::new("z_check_w2", duration, fidelity, 1),
        }
    }
}

/// A USC chained with `USC-EXT` cells for codes beyond 30 qubits (Fig. 8):
/// each extension adds two Registers and a readout ancilla, chained through
/// the ancillas while respecting DR1.
#[derive(Clone, Debug)]
pub struct UscChain {
    layout: DeviceGraph,
    capacity: u32,
    num_ancillas: u32,
}

impl UscChain {
    /// Builds a chain of one USC and `n_ext` extensions.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new(
        compute: DeviceSpec,
        storage: DeviceSpec,
        n_ext: usize,
    ) -> Result<Self, Vec<Violation>> {
        let usc = UscCell::new(compute.clone(), storage.clone())?;
        let mut layout = usc.layout().clone();
        let mut prev_ancilla = usc.ancilla();
        let mut capacity = storage.capacity * 3;
        for e in 0..n_ext {
            // USC-EXT: two registers + ancilla.
            let ancilla = layout.add_device(format!("ext{e}/ancilla"), compute.clone(), true);
            for i in 0..2 {
                let s = layout.add_device(format!("ext{e}/s{i}"), storage.clone(), false);
                let c = layout.add_device(format!("ext{e}/c{i}"), compute.clone(), false);
                layout.connect(s, c);
                layout.connect(c, ancilla);
            }
            layout.connect(prev_ancilla, ancilla);
            capacity += storage.capacity * 2;
            prev_ancilla = ancilla;
        }
        validate(&layout, 1 + n_ext)?;
        Ok(UscChain {
            layout,
            capacity,
            num_ancillas: 1 + n_ext as u32,
        })
    }

    /// The merged layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// Total storage capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of stabilizer ancillas in the chain.
    pub fn num_ancillas(&self) -> u32 {
        self.num_ancillas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};

    fn usc() -> UscCell {
        UscCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator()).unwrap()
    }

    #[test]
    fn usc_layout_counts() {
        let c = usc();
        assert_eq!(c.layout().num_devices(), 7);
        assert_eq!(c.layout().degree(c.ancilla()), 3);
        assert_eq!(c.registers().len(), 3);
    }

    #[test]
    fn check_duration_scales_with_weight() {
        let ch = usc().characterize();
        let d2 = ch.check_duration(2);
        let d4 = ch.check_duration(4);
        let d8 = ch.check_duration(8);
        assert!(d2 < d4 && d4 < d8);
        // Weight 2 fits in one swap group: 2 swaps + 2 CX + readout.
        assert!((d2 - (2.0 * 100e-9 + 2.0 * 100e-9 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn check2_fidelity_band() {
        let ch = usc().characterize();
        // Four noisy swaps at 1e-2 dominate: F ≈ (0.99)^4-ish ≈ 0.95–0.99.
        assert!(
            ch.check2.fidelity > 0.9 && ch.check2.fidelity < 0.999,
            "check fidelity {}",
            ch.check2.fidelity
        );
    }

    #[test]
    fn usc_capacity_is_thirty() {
        let ch = usc().characterize();
        assert_eq!(ch.capacity, 30);
    }

    #[test]
    fn longer_storage_coherence_improves_check() {
        let short = UscCell::new(
            fixed_frequency_qubit(),
            on_chip_multimode_resonator().with_coherence(0.1e-3, 0.1e-3),
        )
        .unwrap()
        .characterize();
        let long = UscCell::new(
            fixed_frequency_qubit(),
            on_chip_multimode_resonator().with_coherence(50e-3, 50e-3),
        )
        .unwrap()
        .characterize();
        assert!(long.check2.fidelity > short.check2.fidelity);
    }

    #[test]
    fn chain_respects_design_rules() {
        for n_ext in 0..3 {
            let chain = UscChain::new(
                fixed_frequency_qubit(),
                on_chip_multimode_resonator(),
                n_ext,
            )
            .unwrap();
            assert_eq!(chain.capacity(), 30 + 20 * n_ext as u32);
            assert_eq!(chain.num_ancillas(), 1 + n_ext as u32);
        }
    }

    #[test]
    fn four_registers_rejected() {
        let r = UscCell::with_registers(fixed_frequency_qubit(), on_chip_multimode_resonator(), 3);
        assert!(r.is_ok());
        // 4 registers is a programming error (DR1), enforced by assert.
        let caught = std::panic::catch_unwind(|| {
            let _ =
                UscCell::with_registers(fixed_frequency_qubit(), on_chip_multimode_resonator(), 4);
        });
        assert!(caught.is_err());
    }
}
