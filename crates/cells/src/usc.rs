//! The Universal Stabilizer Cell `USC` and its chaining extension `USC-EXT`
//! (paper Table 2 row 4 and §4.2.2, Fig. 8).
//!
//! Three Register subcells arranged around a central readout-equipped
//! compute device (the stabilizer ancilla). Checks are *serialized*: data
//! qubits are swapped out of storage, entangled with the ancilla, and
//! swapped back — trading time (and hence demanding long `T_S`) for
//! topology-agnostic error correction.

use hetarch_qsim::backend;
use hetarch_qsim::channels::{IdleParams, Kraus1, Kraus2};
use hetarch_qsim::gates;
use hetarch_qsim::measure::project_z;
use hetarch_qsim::state::DensityMatrix;
use serde::{Deserialize, Serialize};

use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::device::{DeviceRole, DeviceSpec, GateSpec};
use hetarch_devices::rules::{validate, Violation};
use hetarch_devices::topology::{DeviceGraph, DeviceId};

use crate::channel::OpChannel;

/// The abstracted USC cost/fidelity model consumed by the UEC module.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UscChannel {
    /// Register load/store gate (storage SWAP).
    pub swap: GateSpec,
    /// Compute–ancilla two-qubit gate.
    pub cx: GateSpec,
    /// Single-qubit gate.
    pub gate_1q: GateSpec,
    /// Ancilla readout duration.
    pub readout_time: f64,
    /// Storage idle parameters (per mode).
    pub storage_idle: IdleParams,
    /// Compute/ancilla idle parameters.
    pub compute_idle: IdleParams,
    /// Total storage capacity of the cell (modes × registers).
    pub capacity: u32,
    /// Number of Register subcells (qubits addressable in parallel).
    pub registers: u32,
    /// DM-characterized weight-2 Z-check channel.
    pub check2: OpChannel,
}

impl UscChannel {
    /// Wall-clock duration of a serialized weight-`w` stabilizer check:
    /// parallel swap-out (grouped by register), serial CXs to the shared
    /// ancilla, parallel swap-back, readout.
    pub fn check_duration(&self, weight: usize) -> f64 {
        let groups = weight.div_ceil(self.registers as usize) as f64;
        2.0 * groups * self.swap.time + weight as f64 * self.cx.time + self.readout_time
    }
}

/// The USC standard cell (three Registers + central ancilla).
///
/// # Examples
///
/// ```
/// use hetarch_cells::usc::UscCell;
/// use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};
///
/// let cell = UscCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator())?;
/// let ch = cell.characterize();
/// assert_eq!(ch.capacity, 30);
/// assert!(ch.check2.fidelity > 0.9);
/// # Ok::<(), Vec<hetarch_devices::rules::Violation>>(())
/// ```
#[derive(Clone, Debug)]
pub struct UscCell {
    layout: DeviceGraph,
    ancilla: DeviceId,
    registers: Vec<(DeviceId, DeviceId)>, // (storage, compute) pairs
}

impl UscCell {
    /// Builds and design-rule-checks the USC.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new(compute: DeviceSpec, storage: DeviceSpec) -> Result<Self, Vec<Violation>> {
        Self::with_registers(compute, storage, 3)
    }

    /// Builds the USC with a fleet calibration snapshot applied: each layout
    /// slot (`"usc/ancilla"`, `"usc/s0"`, `"usc/c0"`, …) is individually
    /// overridden by the snapshot entry matching its label before
    /// design-rule checking, so a snapshot can describe a fleet where
    /// nominally-identical devices measured differently today. An empty
    /// snapshot yields the identical cell [`UscCell::new`] would.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations of the calibrated layout.
    pub fn new_with_calib(
        compute: DeviceSpec,
        storage: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        Self::with_registers_calib(compute, storage, 3, calib)
    }

    /// Builds a USC variant with `n_registers ∈ 1..=3` Register subcells
    /// (the paper notes four would exhaust the ancilla's connectivity, DR1).
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn with_registers(
        compute: DeviceSpec,
        storage: DeviceSpec,
        n_registers: usize,
    ) -> Result<Self, Vec<Violation>> {
        Self::with_registers_calib(compute, storage, n_registers, &CalibSnapshot::default())
    }

    /// [`UscCell::with_registers`] with per-slot calibration overrides
    /// (see [`UscCell::new_with_calib`]).
    ///
    /// # Errors
    ///
    /// Returns design-rule violations of the calibrated layout.
    pub fn with_registers_calib(
        compute: DeviceSpec,
        storage: DeviceSpec,
        n_registers: usize,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        assert_eq!(compute.role, DeviceRole::Compute);
        assert_eq!(storage.role, DeviceRole::Storage);
        assert!(
            (1..=3).contains(&n_registers),
            "USC supports 1–3 registers (4 would exhaust DR1)"
        );
        let mut layout = DeviceGraph::new();
        let ancilla = layout.add_device("usc/ancilla", calib.apply("usc/ancilla", &compute), true);
        let mut registers = Vec::new();
        for i in 0..n_registers {
            let label_s = format!("usc/s{i}");
            let label_c = format!("usc/c{i}");
            let s = layout.add_device(label_s.clone(), calib.apply(&label_s, &storage), false);
            let c = layout.add_device(label_c.clone(), calib.apply(&label_c, &compute), false);
            layout.connect(s, c);
            layout.connect(c, ancilla);
            registers.push((s, c));
        }
        validate(&layout, 1)?;
        Ok(UscCell {
            layout,
            ancilla,
            registers,
        })
    }

    /// The symbolic layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// The central ancilla id.
    pub fn ancilla(&self) -> DeviceId {
        self.ancilla
    }

    /// The (storage, compute) register pairs.
    pub fn registers(&self) -> &[(DeviceId, DeviceId)] {
        &self.registers
    }

    /// Characterizes the cell. The weight-2 Z-check is simulated exactly on
    /// five qubits (two storage modes, two register computes, the ancilla):
    /// swap out, serial CXs onto the ancilla, swap back, measure — with gate
    /// depolarizing and idle decay at every phase. Fidelity is the
    /// probability of a correct syndrome bit with all data preserved,
    /// averaged over the four classical inputs.
    pub fn characterize(&self) -> UscChannel {
        // Per-slot specs: a calibration snapshot may have overridden each
        // layout slot individually, so every parameter is read from the node
        // it belongs to rather than from one shared compute/storage spec.
        // The weight-2 check probes the first two registers (a 1-register
        // variant reuses register 0 for both roles).
        let anc = &self.layout.node(self.ancilla).spec;
        let (s0_id, c0_id) = self.registers[0];
        let &(s1_id, c1_id) = self.registers.get(1).unwrap_or(&self.registers[0]);
        let s0 = &self.layout.node(s0_id).spec;
        let c0 = &self.layout.node(c0_id).spec;
        let s1 = &self.layout.node(s1_id).spec;
        let c1 = &self.layout.node(c1_id).spec;
        let g1 = c0.gate_1q.expect("compute defines 1q gates");
        let g2_c0 = c0.gate_2q.expect("compute defines 2q gates");
        let g2_c1 = c1.gate_2q.expect("compute defines 2q gates");
        let t_read = anc.readout_time.expect("compute has readout");
        let storage_idle = IdleParams::new(s0.t1, s0.t2).expect("physical coherence");
        let compute_idle = IdleParams::new(anc.t1, anc.t2).expect("physical coherence");
        let idle_s1 = IdleParams::new(s1.t1, s1.t2).expect("physical coherence");
        let idle_c0 = IdleParams::new(c0.t1, c0.t2).expect("physical coherence");
        let idle_c1 = IdleParams::new(c1.t1, c1.t2).expect("physical coherence");

        let depol_swap0 = Kraus2::depolarizing(s0.swap.error).expect("validated");
        let depol_swap1 = Kraus2::depolarizing(s1.swap.error).expect("validated");
        let depol_g2_c0 = Kraus2::depolarizing(g2_c0.error).expect("validated");
        let depol_g2_c1 = Kraus2::depolarizing(g2_c1.error).expect("validated");

        // Both registers' swaps run in parallel, so the swap phase lasts as
        // long as the slower of the two (equal when uncalibrated).
        let swap_phase = s0.swap.time.max(s1.swap.time);

        // Idle channels are built once per (slot, phase duration) and reused
        // across inputs, so each compiles its superoperator kernel exactly
        // once. Application order (storage slots 0, 2 then compute slots
        // 1, 3, 4) matches the pre-calibration code path bit for bit.
        let slot_idles: [(usize, &IdleParams); 5] = [
            (0, &storage_idle),
            (2, &idle_s1),
            (1, &idle_c0),
            (3, &idle_c1),
            (4, &compute_idle),
        ];
        let channels_for = |t: f64| -> Vec<(usize, Kraus1)> {
            slot_idles
                .iter()
                .map(|&(q, p)| (q, p.channel(t).expect("valid")))
                .collect()
        };
        let idle_swap = channels_for(swap_phase);
        let idle_g2_first = channels_for(g2_c0.time);
        let idle_g2_second = channels_for(g2_c1.time);
        let idle_read = channels_for(t_read);

        // Qubits: 0 = s0 mode, 1 = c0, 2 = s1 mode, 3 = c1, 4 = ancilla.
        // All four classical inputs run the same circuit, so they are
        // materialized up front and every channel step is one batched
        // backend apply over the whole probe set.
        let backend = backend::active();
        let idle_all = |states: &mut [DensityMatrix], chs: &[(usize, Kraus1)]| {
            for (q, ch) in chs {
                backend.apply_1q(ch, states, *q);
            }
        };
        let mut states: Vec<DensityMatrix> = (0..4usize)
            .map(|input| {
                let mut rho = DensityMatrix::zero_state(5);
                if input & 1 == 1 {
                    gates::x(&mut rho, 0);
                }
                if input & 2 == 2 {
                    gates::x(&mut rho, 2);
                }
                rho
            })
            .collect();
        // Swap out (parallel: data live in different registers).
        for rho in states.iter_mut() {
            gates::swap(rho, 0, 1);
            gates::swap(rho, 2, 3);
        }
        backend.apply_2q(&depol_swap0, &mut states, 0, 1);
        backend.apply_2q(&depol_swap1, &mut states, 2, 3);
        idle_all(&mut states, &idle_swap);
        // Serial CXs to ancilla; each is driven by its register's compute
        // device, so its gate quality and duration apply.
        for rho in states.iter_mut() {
            gates::cnot(rho, 1, 4);
        }
        backend.apply_2q(&depol_g2_c0, &mut states, 1, 4);
        idle_all(&mut states, &idle_g2_first);
        for rho in states.iter_mut() {
            gates::cnot(rho, 3, 4);
        }
        backend.apply_2q(&depol_g2_c1, &mut states, 3, 4);
        idle_all(&mut states, &idle_g2_second);
        // Swap back.
        for rho in states.iter_mut() {
            gates::swap(rho, 0, 1);
            gates::swap(rho, 2, 3);
        }
        backend.apply_2q(&depol_swap0, &mut states, 0, 1);
        backend.apply_2q(&depol_swap1, &mut states, 2, 3);
        idle_all(&mut states, &idle_swap);
        // Readout window.
        idle_all(&mut states, &idle_read);

        let mut total = 0.0;
        for (input, rho) in states.iter().enumerate() {
            let parity = ((input & 1) ^ ((input >> 1) & 1)) == 1;
            let p_syndrome = {
                let mut b = rho.clone();
                project_z(&mut b, 4, parity)
            };
            let p_data0 = {
                let mut b = rho.clone();
                project_z(&mut b, 0, input & 1 == 1)
            };
            let p_data1 = {
                let mut b = rho.clone();
                project_z(&mut b, 2, input & 2 == 2)
            };
            total += p_syndrome * p_data0 * p_data1;
        }
        let fidelity = (total / 4.0).clamp(0.0, 1.0);
        // `x + x` equals `2.0 * x` bit for bit, so the uncalibrated duration
        // is unchanged by summing the two serial CX times.
        let duration = 2.0 * swap_phase + (g2_c0.time + g2_c1.time) + t_read;

        // Summary fields describe the first register's slots and the
        // ancilla (the check2 channel above already accounts for per-slot
        // differences).
        UscChannel {
            swap: s0.swap,
            cx: g2_c0,
            gate_1q: g1,
            readout_time: t_read,
            storage_idle,
            compute_idle,
            capacity: self.registers.len() as u32 * s0.capacity,
            registers: self.registers.len() as u32,
            check2: OpChannel::new("z_check_w2", duration, fidelity, 1),
        }
    }
}

/// A USC chained with `USC-EXT` cells for codes beyond 30 qubits (Fig. 8):
/// each extension adds two Registers and a readout ancilla, chained through
/// the ancillas while respecting DR1.
#[derive(Clone, Debug)]
pub struct UscChain {
    layout: DeviceGraph,
    capacity: u32,
    num_ancillas: u32,
}

impl UscChain {
    /// Builds a chain of one USC and `n_ext` extensions.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new(
        compute: DeviceSpec,
        storage: DeviceSpec,
        n_ext: usize,
    ) -> Result<Self, Vec<Violation>> {
        Self::new_with_calib(compute, storage, n_ext, &CalibSnapshot::default())
    }

    /// Builds the chain with a fleet calibration snapshot applied: the base
    /// USC slots and each extension slot (`"ext{e}/ancilla"`, `"ext{e}/s{i}"`,
    /// `"ext{e}/c{i}"`) are individually overridden by the snapshot entry
    /// matching their label. An empty snapshot yields the identical chain
    /// [`UscChain::new`] would.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new_with_calib(
        compute: DeviceSpec,
        storage: DeviceSpec,
        n_ext: usize,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        let usc = UscCell::new_with_calib(compute.clone(), storage.clone(), calib)?;
        let mut layout = usc.layout().clone();
        let mut prev_ancilla = usc.ancilla();
        let mut capacity = storage.capacity * 3;
        for e in 0..n_ext {
            // USC-EXT: two registers + ancilla.
            let label_a = format!("ext{e}/ancilla");
            let ancilla = layout.add_device(label_a.clone(), calib.apply(&label_a, &compute), true);
            for i in 0..2 {
                let label_s = format!("ext{e}/s{i}");
                let label_c = format!("ext{e}/c{i}");
                let s = layout.add_device(label_s.clone(), calib.apply(&label_s, &storage), false);
                let c = layout.add_device(label_c.clone(), calib.apply(&label_c, &compute), false);
                layout.connect(s, c);
                layout.connect(c, ancilla);
            }
            layout.connect(prev_ancilla, ancilla);
            capacity += storage.capacity * 2;
            prev_ancilla = ancilla;
        }
        validate(&layout, 1 + n_ext)?;
        Ok(UscChain {
            layout,
            capacity,
            num_ancillas: 1 + n_ext as u32,
        })
    }

    /// The merged layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// Total storage capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of stabilizer ancillas in the chain.
    pub fn num_ancillas(&self) -> u32 {
        self.num_ancillas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};

    fn usc() -> UscCell {
        UscCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator()).unwrap()
    }

    #[test]
    fn usc_layout_counts() {
        let c = usc();
        assert_eq!(c.layout().num_devices(), 7);
        assert_eq!(c.layout().degree(c.ancilla()), 3);
        assert_eq!(c.registers().len(), 3);
    }

    #[test]
    fn check_duration_scales_with_weight() {
        let ch = usc().characterize();
        let d2 = ch.check_duration(2);
        let d4 = ch.check_duration(4);
        let d8 = ch.check_duration(8);
        assert!(d2 < d4 && d4 < d8);
        // Weight 2 fits in one swap group: 2 swaps + 2 CX + readout.
        assert!((d2 - (2.0 * 100e-9 + 2.0 * 100e-9 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn check2_fidelity_band() {
        let ch = usc().characterize();
        // Four noisy swaps at 1e-2 dominate: F ≈ (0.99)^4-ish ≈ 0.95–0.99.
        assert!(
            ch.check2.fidelity > 0.9 && ch.check2.fidelity < 0.999,
            "check fidelity {}",
            ch.check2.fidelity
        );
    }

    #[test]
    fn usc_capacity_is_thirty() {
        let ch = usc().characterize();
        assert_eq!(ch.capacity, 30);
    }

    #[test]
    fn longer_storage_coherence_improves_check() {
        let short = UscCell::new(
            fixed_frequency_qubit(),
            on_chip_multimode_resonator().with_coherence(0.1e-3, 0.1e-3),
        )
        .unwrap()
        .characterize();
        let long = UscCell::new(
            fixed_frequency_qubit(),
            on_chip_multimode_resonator().with_coherence(50e-3, 50e-3),
        )
        .unwrap()
        .characterize();
        assert!(long.check2.fidelity > short.check2.fidelity);
    }

    #[test]
    fn chain_respects_design_rules() {
        for n_ext in 0..3 {
            let chain = UscChain::new(
                fixed_frequency_qubit(),
                on_chip_multimode_resonator(),
                n_ext,
            )
            .unwrap();
            assert_eq!(chain.capacity(), 30 + 20 * n_ext as u32);
            assert_eq!(chain.num_ancillas(), 1 + n_ext as u32);
        }
    }

    #[test]
    fn four_registers_rejected() {
        let r = UscCell::with_registers(fixed_frequency_qubit(), on_chip_multimode_resonator(), 3);
        assert!(r.is_ok());
        // 4 registers is a programming error (DR1), enforced by assert.
        let caught = std::panic::catch_unwind(|| {
            let _ =
                UscCell::with_registers(fixed_frequency_qubit(), on_chip_multimode_resonator(), 4);
        });
        assert!(caught.is_err());
    }
}
