//! The [`Cell`] abstraction: one interface over all four standard cells.
//!
//! Every standard cell in Table 2 has the same shape: it is built from two
//! device specs, design-rule-checked into a symbolic layout, and
//! characterized into an abstract channel by exact density-matrix
//! simulation. The trait makes that shape explicit so the
//! [`CellLibrary`](crate::library::CellLibrary) can memoize *any* cell
//! through one generic code path instead of four copy-pasted ones, and so
//! the module layer can ask structural questions (layout, readout budget)
//! without knowing which cell it holds.

use std::fmt;

use serde::{de::DeserializeOwned, Deserialize, Serialize};

use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::device::DeviceSpec;
use hetarch_devices::rules::Violation;
use hetarch_devices::topology::DeviceGraph;

use crate::parcheck::{ParCheckCell, ParCheckChannel};
use crate::register::{RegisterCell, RegisterChannel};
use crate::seqop::{SeqOpCell, SeqOpChannel};
use crate::usc::{UscCell, UscChannel};

/// Discriminant naming each standard-cell type (the Table 2 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Storage Register: one compute qubit fronting a multimode store.
    Register,
    /// Parity-check cell: two compute qubits, one readout-equipped.
    ParCheck,
    /// Sequential-operation cell: two Registers sharing a readout qubit.
    SeqOp,
    /// Universal stabilizer cell: three Registers around a readout ancilla.
    Usc,
}

impl CellKind {
    /// Every kind, in tag order.
    pub const ALL: [CellKind; 4] = [
        CellKind::Register,
        CellKind::ParCheck,
        CellKind::SeqOp,
        CellKind::Usc,
    ];

    /// Human-readable name (Table 2 spelling).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Register => "Register",
            CellKind::ParCheck => "ParCheck",
            CellKind::SeqOp => "SeqOp",
            CellKind::Usc => "USC",
        }
    }

    /// Stable one-byte tag used in cache keys and the persisted format.
    pub(crate) fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`CellKind::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<CellKind> {
        CellKind::ALL.get(tag as usize).copied()
    }

    /// Index into per-kind counter arrays.
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A quantum standard cell: a design-rule-checked two-device layout that
/// can be abstracted into a channel by exact density-matrix simulation.
pub trait Cell: Sized {
    /// The abstracted channel produced by [`Cell::characterize`].
    type Channel: Clone + Send + Sync + Serialize + DeserializeOwned + 'static;

    /// Which Table 2 cell this is.
    const KIND: CellKind;

    /// Builds and design-rule-checks the cell from its two device specs
    /// (the meaning of `a`/`b` — compute/storage or compute/compute — is
    /// fixed per cell kind).
    ///
    /// # Errors
    ///
    /// Returns the design-rule violations of the resulting layout.
    fn build(a: DeviceSpec, b: DeviceSpec) -> Result<Self, Vec<Violation>>;

    /// Builds the cell with a fleet calibration snapshot applied: each
    /// layout slot is calibrated by the snapshot entry matching its node
    /// label (e.g. `"usc/ancilla"`) before design-rule checking and
    /// characterization. An empty snapshot builds the identical cell
    /// [`Cell::build`] would.
    ///
    /// # Errors
    ///
    /// Returns the design-rule violations of the resulting layout.
    fn build_with_calib(
        a: DeviceSpec,
        b: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>>;

    /// The symbolic device layout.
    fn layout(&self) -> &DeviceGraph;

    /// Number of readout-equipped devices the cell carries (its DR4
    /// readout budget, which rolls up into module control-line counts).
    fn required_readouts(&self) -> usize {
        self.layout()
            .iter()
            .filter(|(_, n)| n.readout_equipped)
            .count()
    }

    /// Characterizes the cell by density-matrix simulation. This is the
    /// expensive step the [`CellLibrary`](crate::library::CellLibrary)
    /// memoizes.
    fn characterize(&self) -> Self::Channel;
}

impl Cell for RegisterCell {
    type Channel = RegisterChannel;
    const KIND: CellKind = CellKind::Register;

    fn build(a: DeviceSpec, b: DeviceSpec) -> Result<Self, Vec<Violation>> {
        RegisterCell::new(a, b)
    }

    fn build_with_calib(
        a: DeviceSpec,
        b: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        RegisterCell::new_with_calib(a, b, calib)
    }

    fn layout(&self) -> &DeviceGraph {
        RegisterCell::layout(self)
    }

    fn characterize(&self) -> RegisterChannel {
        RegisterCell::characterize(self)
    }
}

impl Cell for ParCheckCell {
    type Channel = ParCheckChannel;
    const KIND: CellKind = CellKind::ParCheck;

    fn build(a: DeviceSpec, b: DeviceSpec) -> Result<Self, Vec<Violation>> {
        ParCheckCell::new(a, b)
    }

    fn build_with_calib(
        a: DeviceSpec,
        b: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        ParCheckCell::new_with_calib(a, b, calib)
    }

    fn layout(&self) -> &DeviceGraph {
        ParCheckCell::layout(self)
    }

    fn characterize(&self) -> ParCheckChannel {
        ParCheckCell::characterize(self)
    }
}

impl Cell for SeqOpCell {
    type Channel = SeqOpChannel;
    const KIND: CellKind = CellKind::SeqOp;

    fn build(a: DeviceSpec, b: DeviceSpec) -> Result<Self, Vec<Violation>> {
        SeqOpCell::new(a, b)
    }

    fn build_with_calib(
        a: DeviceSpec,
        b: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        SeqOpCell::new_with_calib(a, b, calib)
    }

    fn layout(&self) -> &DeviceGraph {
        SeqOpCell::layout(self)
    }

    fn characterize(&self) -> SeqOpChannel {
        SeqOpCell::characterize(self)
    }
}

impl Cell for UscCell {
    type Channel = UscChannel;
    const KIND: CellKind = CellKind::Usc;

    fn build(a: DeviceSpec, b: DeviceSpec) -> Result<Self, Vec<Violation>> {
        UscCell::new(a, b)
    }

    fn build_with_calib(
        a: DeviceSpec,
        b: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        UscCell::new_with_calib(a, b, calib)
    }

    fn layout(&self) -> &DeviceGraph {
        UscCell::layout(self)
    }

    fn characterize(&self) -> UscChannel {
        UscCell::characterize(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};

    #[test]
    fn kind_tags_round_trip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(CellKind::from_tag(4), None);
    }

    #[test]
    fn readout_budgets_match_table2() {
        let c = fixed_frequency_qubit();
        let s = on_chip_multimode_resonator();
        assert_eq!(
            RegisterCell::build(c.clone(), s.clone())
                .unwrap()
                .required_readouts(),
            0
        );
        assert_eq!(
            ParCheckCell::build(c.clone(), c.clone())
                .unwrap()
                .required_readouts(),
            1
        );
        assert_eq!(
            SeqOpCell::build(c.clone(), s.clone())
                .unwrap()
                .required_readouts(),
            1
        );
        assert_eq!(UscCell::build(c, s).unwrap().required_readouts(), 1);
    }

    #[test]
    fn trait_characterization_matches_inherent() {
        let cell =
            RegisterCell::build(fixed_frequency_qubit(), on_chip_multimode_resonator()).unwrap();
        let via_trait = Cell::characterize(&cell);
        let via_inherent = RegisterCell::characterize(&cell);
        assert_eq!(via_trait, via_inherent);
    }
}
