//! The cell-to-module abstraction boundary.
//!
//! HetArch's scalability hinges on characterizing each standard cell *once*
//! with exact density-matrix simulation and then abstracting it as a quantum
//! channel (paper §2, §3.2). [`OpChannel`] is that abstraction: an operation
//! name, a duration, a fidelity, and the residual error decomposition
//! modules need for phenomenological composition (paper ref. 31).

use serde::{Deserialize, Serialize};

/// A characterized cell operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpChannel {
    /// Operation name (e.g. `"load"`, `"parity_check"`).
    pub op: String,
    /// Wall-clock duration in seconds.
    pub duration: f64,
    /// Average operation fidelity.
    pub fidelity: f64,
    /// Number of such operations the cell can run concurrently.
    pub concurrency: u32,
}

impl OpChannel {
    /// Creates a characterized operation.
    ///
    /// # Panics
    ///
    /// Panics if the fidelity is outside `[0, 1]` or the duration negative.
    pub fn new(op: impl Into<String>, duration: f64, fidelity: f64, concurrency: u32) -> Self {
        assert!(duration >= 0.0 && duration.is_finite(), "invalid duration");
        assert!(
            (0.0..=1.0).contains(&fidelity),
            "invalid fidelity {fidelity}"
        );
        OpChannel {
            op: op.into(),
            duration,
            fidelity,
            concurrency,
        }
    }

    /// Error probability `1 − F`.
    pub fn infidelity(&self) -> f64 {
        1.0 - self.fidelity
    }
}

/// Composes independent error rates (the paper's module-level
/// phenomenological model, paper ref. 31): probability that at least one of two
/// independent faults occurs.
pub fn compose_errors(p: f64, q: f64) -> f64 {
    p * (1.0 - q) + q * (1.0 - p)
}

/// Sums independent error rates across a sequence of operations, saturating
/// at 1 (the module-level "independent error rates are summed" model of
/// §4.3, accurate to first order and conservative beyond).
pub fn sum_error_rates<I: IntoIterator<Item = f64>>(rates: I) -> f64 {
    let mut acc = 0.0;
    for r in rates {
        acc = compose_errors(acc, r);
    }
    acc
}

/// Multiplicatively compounds fidelities (used for CAT-state assembly in
/// §4.3: a large CAT is modeled from smaller pieces with multiplicative
/// compounding).
pub fn compound_fidelities<I: IntoIterator<Item = f64>>(fidelities: I) -> f64 {
    fidelities.into_iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessors() {
        let ch = OpChannel::new("load", 400e-9, 0.99, 1);
        assert_eq!(ch.op, "load");
        assert!((ch.infidelity() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid fidelity")]
    fn invalid_fidelity_panics() {
        OpChannel::new("x", 0.0, 1.2, 1);
    }

    #[test]
    fn error_composition_is_symmetric_and_bounded() {
        assert_eq!(compose_errors(0.0, 0.3), 0.3);
        assert_eq!(compose_errors(0.3, 0.0), 0.3);
        let p = compose_errors(0.5, 0.5);
        assert!((p - 0.5).abs() < 1e-12);
        assert!(compose_errors(1.0, 0.2) <= 1.0);
    }

    #[test]
    fn summed_rates_approach_first_order_sum_for_small_p() {
        let total = sum_error_rates([1e-4, 2e-4, 3e-4]);
        assert!((total - 6e-4).abs() < 1e-6);
    }

    #[test]
    fn compounded_fidelities() {
        let f = compound_fidelities([0.99, 0.98, 0.97]);
        assert!((f - 0.99 * 0.98 * 0.97).abs() < 1e-12);
    }
}
