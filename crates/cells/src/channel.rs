//! The cell-to-module abstraction boundary.
//!
//! HetArch's scalability hinges on characterizing each standard cell *once*
//! with exact density-matrix simulation and then abstracting it as a quantum
//! channel (paper §2, §3.2). [`OpChannel`] is that abstraction: an operation
//! name, a duration, a fidelity, and the residual error decomposition
//! modules need for phenomenological composition (paper ref. 31).

use serde::{Deserialize, Serialize};

/// A characterized cell operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpChannel {
    /// Operation name (e.g. `"load"`, `"parity_check"`).
    pub op: String,
    /// Wall-clock duration in seconds.
    pub duration: f64,
    /// Average operation fidelity.
    pub fidelity: f64,
    /// Number of such operations the cell can run concurrently.
    pub concurrency: u32,
}

/// A rejected [`OpChannel`] parameter, reported by [`OpChannel::try_new`].
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelError {
    /// Duration was negative, NaN, or infinite.
    InvalidDuration(f64),
    /// Fidelity was outside `[0, 1]` or NaN.
    InvalidFidelity(f64),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::InvalidDuration(d) => {
                write!(f, "invalid duration {d}: must be finite and >= 0")
            }
            ChannelError::InvalidFidelity(p) => {
                write!(f, "invalid fidelity {p}: must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

impl OpChannel {
    /// Creates a characterized operation.
    ///
    /// **Validation policy.** Cell characterization is the trusted producer
    /// of channels, so in-workspace construction uses this panicking
    /// constructor: an out-of-range value here is a characterization bug,
    /// not recoverable input. Code handling *untrusted* parameters (loaded
    /// files, user sweeps) should use [`try_new`](Self::try_new), or
    /// [`new_clamped`](Self::new_clamped) when saturating numerical noise to
    /// the valid range is acceptable.
    ///
    /// # Panics
    ///
    /// Panics if the fidelity is outside `[0, 1]` or the duration is
    /// negative or non-finite.
    pub fn new(op: impl Into<String>, duration: f64, fidelity: f64, concurrency: u32) -> Self {
        match Self::try_new(op, duration, fidelity, concurrency) {
            Ok(ch) => ch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects non-finite or negative durations and
    /// fidelities outside `[0, 1]` (including NaN) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] naming the offending parameter and value.
    pub fn try_new(
        op: impl Into<String>,
        duration: f64,
        fidelity: f64,
        concurrency: u32,
    ) -> Result<Self, ChannelError> {
        if !duration.is_finite() || duration < 0.0 {
            return Err(ChannelError::InvalidDuration(duration));
        }
        if !fidelity.is_finite() || !(0.0..=1.0).contains(&fidelity) {
            return Err(ChannelError::InvalidFidelity(fidelity));
        }
        Ok(OpChannel {
            op: op.into(),
            duration,
            fidelity,
            concurrency,
        })
    }

    /// Clamping constructor: saturates the duration to `[0, ∞)` and the
    /// fidelity to `[0, 1]`. Intended for callers whose inputs may carry
    /// harmless numerical noise (e.g. a fidelity of `1.0 + 1e-16` from an
    /// accumulated product).
    ///
    /// # Panics
    ///
    /// NaN cannot be meaningfully clamped and still panics.
    pub fn new_clamped(
        op: impl Into<String>,
        duration: f64,
        fidelity: f64,
        concurrency: u32,
    ) -> Self {
        assert!(!duration.is_nan(), "duration is NaN");
        assert!(!fidelity.is_nan(), "fidelity is NaN");
        OpChannel {
            op: op.into(),
            duration: duration.clamp(0.0, f64::MAX),
            fidelity: fidelity.clamp(0.0, 1.0),
            concurrency,
        }
    }

    /// Error probability `1 − F`.
    pub fn infidelity(&self) -> f64 {
        1.0 - self.fidelity
    }
}

/// Composes independent error rates (the paper's module-level
/// phenomenological model, paper ref. 31): probability that at least one of two
/// independent faults occurs.
pub fn compose_errors(p: f64, q: f64) -> f64 {
    p * (1.0 - q) + q * (1.0 - p)
}

/// Sums independent error rates across a sequence of operations, saturating
/// at 1 (the module-level "independent error rates are summed" model of
/// §4.3, accurate to first order and conservative beyond).
pub fn sum_error_rates<I: IntoIterator<Item = f64>>(rates: I) -> f64 {
    let mut acc = 0.0;
    for r in rates {
        acc = compose_errors(acc, r);
    }
    acc
}

/// Multiplicatively compounds fidelities (used for CAT-state assembly in
/// §4.3: a large CAT is modeled from smaller pieces with multiplicative
/// compounding).
pub fn compound_fidelities<I: IntoIterator<Item = f64>>(fidelities: I) -> f64 {
    fidelities.into_iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessors() {
        let ch = OpChannel::new("load", 400e-9, 0.99, 1);
        assert_eq!(ch.op, "load");
        assert!((ch.infidelity() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid fidelity")]
    fn invalid_fidelity_panics() {
        OpChannel::new("x", 0.0, 1.2, 1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        OpChannel::new("x", -1e-9, 0.99, 1);
    }

    #[test]
    fn try_new_rejects_out_of_range_parameters() {
        assert_eq!(
            OpChannel::try_new("x", -1.0, 0.5, 1),
            Err(ChannelError::InvalidDuration(-1.0))
        );
        assert!(matches!(
            OpChannel::try_new("x", f64::NAN, 0.5, 1),
            Err(ChannelError::InvalidDuration(d)) if d.is_nan()
        ));
        assert_eq!(
            OpChannel::try_new("x", f64::INFINITY, 0.5, 1),
            Err(ChannelError::InvalidDuration(f64::INFINITY))
        );
        assert_eq!(
            OpChannel::try_new("x", 1e-6, 1.0 + 1e-9, 1),
            Err(ChannelError::InvalidFidelity(1.0 + 1e-9))
        );
        assert_eq!(
            OpChannel::try_new("x", 1e-6, -0.1, 1),
            Err(ChannelError::InvalidFidelity(-0.1))
        );
        assert!(matches!(
            OpChannel::try_new("x", 1e-6, f64::NAN, 1),
            Err(ChannelError::InvalidFidelity(_))
        ));
        assert!(OpChannel::try_new("x", 0.0, 0.0, 0).is_ok());
        assert!(OpChannel::try_new("x", 1e-6, 1.0, 4).is_ok());
    }

    #[test]
    fn try_new_error_messages_name_the_value() {
        let e = OpChannel::try_new("x", -2.0, 0.5, 1).unwrap_err();
        assert!(e.to_string().contains("-2"));
        let e = OpChannel::try_new("x", 0.0, 1.5, 1).unwrap_err();
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn new_clamped_saturates_numerical_noise() {
        let ch = OpChannel::new_clamped("load", -0.0, 1.0 + 1e-16, 1);
        assert_eq!(ch.duration, 0.0);
        assert_eq!(ch.fidelity, 1.0);
        let ch = OpChannel::new_clamped("load", 1e-6, -1e-16, 1);
        assert_eq!(ch.fidelity, 0.0);
    }

    #[test]
    #[should_panic(expected = "fidelity is NaN")]
    fn new_clamped_rejects_nan() {
        OpChannel::new_clamped("x", 0.0, f64::NAN, 1);
    }

    #[test]
    fn error_composition_is_symmetric_and_bounded() {
        assert_eq!(compose_errors(0.0, 0.3), 0.3);
        assert_eq!(compose_errors(0.3, 0.0), 0.3);
        let p = compose_errors(0.5, 0.5);
        assert!((p - 0.5).abs() < 1e-12);
        assert!(compose_errors(1.0, 0.2) <= 1.0);
    }

    #[test]
    fn summed_rates_approach_first_order_sum_for_small_p() {
        let total = sum_error_rates([1e-4, 2e-4, 3e-4]);
        assert!((total - 6e-4).abs() < 1e-6);
    }

    #[test]
    fn compounded_fidelities() {
        let f = compound_fidelities([0.99, 0.98, 0.97]);
        assert!((f - 0.99 * 0.98 * 0.97).abs() < 1e-12);
    }
}
