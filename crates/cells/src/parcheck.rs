//! The `ParCheck` standard cell (paper Table 2, row 2).
//!
//! Two compute devices coupled together; one carries a readout resonator.
//! Optimized for parity checks: move two qubits in, apply one- and two-qubit
//! gates, measure one qubit.

use hetarch_qsim::backend;
use hetarch_qsim::bell::DistillNoise;
use hetarch_qsim::channels::{IdleParams, Kraus1, Kraus2};
use hetarch_qsim::measure::project_z;
use hetarch_qsim::state::DensityMatrix;
use serde::{Deserialize, Serialize};

use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::device::{DeviceRole, DeviceSpec, GateSpec};
use hetarch_devices::rules::{validate, Violation};
use hetarch_devices::topology::{DeviceGraph, DeviceId};

use crate::channel::OpChannel;

/// The abstracted ParCheck channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParCheckChannel {
    /// Full parity-check operation (two-qubit gate + readout), with the
    /// fidelity of correct parity assignment on classical-basis probes.
    pub parity: OpChannel,
    /// Single-qubit gate properties.
    pub gate_1q: GateSpec,
    /// Two-qubit gate properties.
    pub gate_2q: GateSpec,
    /// Readout duration.
    pub readout_time: f64,
    /// Idle parameters of the non-measured compute device.
    pub idle_a: IdleParams,
    /// Idle parameters of the measured compute device.
    pub idle_b: IdleParams,
}

impl ParCheckChannel {
    /// Noise settings for a DEJMPS round executed on this cell.
    pub fn distill_noise(&self) -> DistillNoise {
        DistillNoise {
            p2q: self.gate_2q.error,
            p1q: self.gate_1q.error,
            // Residual parity-assignment error beyond the gate errors: the
            // decoherence of the measured qubit during readout.
            meas_flip: 1.0 - self.parity.fidelity.min(1.0),
        }
    }
}

/// The ParCheck standard cell.
///
/// # Examples
///
/// ```
/// use hetarch_cells::parcheck::ParCheckCell;
/// use hetarch_devices::catalog::fixed_frequency_qubit;
///
/// let cell = ParCheckCell::new(fixed_frequency_qubit(), fixed_frequency_qubit())?;
/// let ch = cell.characterize();
/// assert!(ch.parity.fidelity > 0.97);
/// # Ok::<(), Vec<hetarch_devices::rules::Violation>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ParCheckCell {
    qubit_a: DeviceSpec,
    qubit_b: DeviceSpec,
    layout: DeviceGraph,
    id_a: DeviceId,
    id_b: DeviceId,
}

impl ParCheckCell {
    /// Builds and design-rule-checks the cell. Device `b` receives the
    /// readout resonator (DR4: exactly one readout).
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new(qubit_a: DeviceSpec, qubit_b: DeviceSpec) -> Result<Self, Vec<Violation>> {
        assert_eq!(
            qubit_a.role,
            DeviceRole::Compute,
            "ParCheck uses compute devices"
        );
        assert_eq!(
            qubit_b.role,
            DeviceRole::Compute,
            "ParCheck uses compute devices"
        );
        let mut layout = DeviceGraph::new();
        let id_a = layout.add_device("parcheck/a", qubit_a.clone(), false);
        let id_b = layout.add_device("parcheck/b", qubit_b.clone(), true);
        layout.connect(id_a, id_b);
        validate(&layout, 1)?;
        Ok(ParCheckCell {
            qubit_a,
            qubit_b,
            layout,
            id_a,
            id_b,
        })
    }

    /// Builds the cell with a fleet calibration snapshot applied: the
    /// snapshot entries labelled `"parcheck/a"` and `"parcheck/b"`
    /// override the corresponding catalog specs before design-rule
    /// checking. An empty snapshot yields the identical cell
    /// [`ParCheckCell::new`] would.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations of the calibrated layout.
    pub fn new_with_calib(
        qubit_a: DeviceSpec,
        qubit_b: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        ParCheckCell::new(
            calib.apply("parcheck/a", &qubit_a),
            calib.apply("parcheck/b", &qubit_b),
        )
    }

    /// The symbolic layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// Id of the non-readout device.
    pub fn id_a(&self) -> DeviceId {
        self.id_a
    }

    /// Id of the readout-equipped device.
    pub fn id_b(&self) -> DeviceId {
        self.id_b
    }

    /// Characterizes the parity-check operation by density-matrix
    /// simulation over two probe families, reporting the worst:
    ///
    /// * **Classical probes** — for each two-qubit classical basis state,
    ///   run `CX(a → b)`, let both qubits decohere for the gate + readout
    ///   window, then project b; score the probability of the correct parity
    ///   outcome with qubit `a` preserved. Sensitive to amplitude damping
    ///   (`T1`) but blind to pure dephasing.
    /// * **Coherence probe** — prepare `|+⟩|0⟩`, run the same circuit, and
    ///   score the fidelity with the ideal Bell state `|Φ+⟩`. DEJMPS acts on
    ///   entangled pairs, so the dephasing (`T2`) this probe sees degrades
    ///   real parity checks just as much as population errors do.
    pub fn characterize(&self) -> ParCheckChannel {
        let g1 = self
            .qubit_a
            .gate_1q
            .expect("compute devices define 1q gates");
        let g2 = self
            .qubit_a
            .gate_2q
            .expect("compute devices define 2q gates");
        let t_read = self
            .qubit_b
            .readout_time
            .expect("readout-equipped device defines readout time");
        let idle_a = IdleParams::new(self.qubit_a.t1, self.qubit_a.t2)
            .expect("catalog coherence is physical");
        let idle_b = IdleParams::new(self.qubit_b.t1, self.qubit_b.t2)
            .expect("catalog coherence is physical");

        let depol2 = Kraus2::depolarizing(g2.error).expect("validated gate error");
        // Both probe families decohere for the same gate + readout window;
        // build the channels once so each compiles its kernel once.
        let idle_a_ch = idle_a
            .channel(g2.time + t_read)
            .expect("non-negative duration");
        let idle_b_ch = idle_b
            .channel(g2.time + t_read)
            .expect("non-negative duration");
        // All five probes (four classical basis inputs + the Bell coherence
        // probe) run the same circuit, so they are materialized up front and
        // every channel step is one batched apply over the whole set.
        let backend = backend::active();
        let mut states: Vec<DensityMatrix> = (0..4usize)
            .map(|input| {
                let mut rho = DensityMatrix::zero_state(2);
                if input & 1 == 1 {
                    hetarch_qsim::gates::x(&mut rho, 0);
                }
                if input & 2 == 2 {
                    hetarch_qsim::gates::x(&mut rho, 1);
                }
                rho
            })
            .collect();
        states.push({
            let mut rho = DensityMatrix::zero_state(2);
            hetarch_qsim::gates::h(&mut rho, 0);
            rho
        });
        // CX from a (qubit 0) onto b (qubit 1), then decoherence during the
        // gate and the readout window.
        for rho in states.iter_mut() {
            hetarch_qsim::gates::cnot(rho, 0, 1);
        }
        backend.apply_2q(&depol2, &mut states, 0, 1);
        backend.apply_1q(&idle_a_ch, &mut states, 0);
        backend.apply_1q(&idle_b_ch, &mut states, 1);

        let mut total = 0.0;
        for (input, rho) in states.iter().take(4).enumerate() {
            let parity = (input & 1) ^ ((input >> 1) & 1) == 1;
            let p_correct = {
                let mut branch = rho.clone();
                project_z(&mut branch, 1, parity)
            };
            // Preservation of qubit a: probability its Z value survived.
            let keep_a = {
                let mut branch = rho.clone();
                project_z(&mut branch, 0, input & 1 == 1)
            };
            total += p_correct * keep_a;
        }
        let classical_fidelity = total / 4.0;

        // Coherence probe: |+⟩|0⟩ → CX → ideal |Φ+⟩; dephasing during the
        // gate + readout window shows up here and nowhere in the classical
        // probes.
        let bell_fidelity = {
            use hetarch_qsim::complex::C64;
            let inv = std::f64::consts::FRAC_1_SQRT_2;
            let phi_plus = [C64::new(inv, 0.0), C64::ZERO, C64::ZERO, C64::new(inv, 0.0)];
            hetarch_qsim::fidelity::fidelity_with_pure(&states[4], &phi_plus)
        };

        // Report the worst probe family: the cell abstraction must hold for
        // whatever input a module feeds it, so a T2-limited device (where the
        // Bell probe is worst) may not hide behind its classical-basis score.
        let fidelity = classical_fidelity.min(bell_fidelity).clamp(0.0, 1.0);
        // Ensure the channel abstraction is internally consistent even for
        // pathological inputs.
        let _ = Kraus1::depolarizing(g1.error).expect("validated gate error");
        ParCheckChannel {
            parity: OpChannel::new("parity_check", g2.time + t_read, fidelity, 1),
            gate_1q: g1,
            gate_2q: g2,
            readout_time: t_read,
            idle_a,
            idle_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{fixed_frequency_qubit, flux_tunable_qubit};

    fn cell() -> ParCheckCell {
        ParCheckCell::new(fixed_frequency_qubit(), fixed_frequency_qubit()).unwrap()
    }

    #[test]
    fn layout_has_one_readout() {
        let c = cell();
        let equipped: Vec<_> = c
            .layout()
            .iter()
            .filter(|(_, n)| n.readout_equipped)
            .collect();
        assert_eq!(equipped.len(), 1);
    }

    #[test]
    fn parity_fidelity_reflects_gate_error() {
        let ch = cell().characterize();
        // 1% two-qubit error dominates; fidelity ≈ 0.985–0.999.
        assert!(
            ch.parity.fidelity > 0.97 && ch.parity.fidelity < 1.0,
            "parity fidelity {}",
            ch.parity.fidelity
        );
        assert!((ch.parity.duration - (100e-9 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn distill_noise_is_consistent() {
        let ch = cell().characterize();
        let n = ch.distill_noise();
        assert_eq!(n.p2q, 1e-3);
        assert_eq!(n.p1q, 1e-3);
        assert!(n.meas_flip > 0.0 && n.meas_flip < 0.05);
    }

    #[test]
    fn heterogeneous_pairing_is_allowed() {
        // A fluxonium readout qubit next to a transmon: the design rules
        // admit heterogeneous compute pairs.
        let c = ParCheckCell::new(fixed_frequency_qubit(), flux_tunable_qubit()).unwrap();
        let ch = c.characterize();
        assert!(ch.parity.fidelity > 0.9);
    }

    #[test]
    fn lower_coherence_hurts_parity_fidelity() {
        let good = cell().characterize();
        let worse = ParCheckCell::new(
            fixed_frequency_qubit().with_coherence(10e-6, 10e-6),
            fixed_frequency_qubit().with_coherence(10e-6, 10e-6),
        )
        .unwrap()
        .characterize();
        assert!(worse.parity.fidelity < good.parity.fidelity);
    }
}
