//! # hetarch-cells
//!
//! Quantum standard cells (paper §3.2, Table 2): `Register`, `ParCheck`,
//! `SeqOp` and the universal stabilizer cell `USC`/`USC-EXT`.
//!
//! Each cell implements the [`cell::Cell`] trait: a design-rule-checked
//! symbolic layout ([`hetarch_devices::topology::DeviceGraph`]) plus a
//! `characterize()` method that runs exact density-matrix simulations
//! ([`hetarch_qsim`]) and abstracts the result into channel structs that the
//! module layer consumes — the boundary that keeps HetArch's hierarchical
//! simulation tractable. The [`library::CellLibrary`] memoizes every cell
//! kind through one generic, single-flight, persistable cache.
//!
//! # Example
//!
//! ```
//! use hetarch_cells::library::CellLibrary;
//! use hetarch_cells::RegisterCell;
//! use hetarch_devices::catalog::{fixed_frequency_qubit, multimode_resonator_3d};
//!
//! let lib = CellLibrary::new();
//! let reg = lib.get::<RegisterCell>(&fixed_frequency_qubit(), &multimode_resonator_3d());
//! assert!(reg.load.fidelity > 0.95);
//! assert_eq!(reg.modes, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod channel;
pub mod library;
pub mod parcheck;
pub mod probe;
pub mod register;
pub mod seqop;
pub mod usc;

pub use cell::{Cell, CellKind};
pub use channel::OpChannel;
pub use library::{CacheStats, CellLibrary, CharKey, KindStats};
pub use parcheck::{ParCheckCell, ParCheckChannel};
pub use register::{RegisterCell, RegisterChannel};
pub use seqop::{SeqOpCell, SeqOpChannel};
pub use usc::{UscCell, UscChain, UscChannel};
