//! Shared density-matrix probe routines for cell characterization.

use hetarch_qsim::complex::C64;
use hetarch_qsim::fidelity::fidelity_with_pure;
use hetarch_qsim::matrix::Mat;
use hetarch_qsim::state::DensityMatrix;

/// The six single-qubit Pauli eigenstates used for state-averaged fidelity,
/// as (preparation gates, resulting state vector).
pub fn pauli_eigenstate_probes() -> Vec<(Vec<Mat>, Vec<C64>)> {
    let h = Mat::hadamard();
    let x = Mat::pauli_x();
    let s = Mat::s_gate();
    let preps: Vec<Vec<Mat>> = vec![
        vec![],                      // |0>
        vec![x.clone()],             // |1>
        vec![h.clone()],             // |+>
        vec![x.clone(), h.clone()],  // |->
        vec![h.clone(), s.clone()],  // |+i>
        vec![h.clone(), s.dagger()], // |-i>
    ];
    preps
        .into_iter()
        .map(|gates| {
            let mut psi = vec![C64::ONE, C64::ZERO];
            for g in &gates {
                psi = apply_vec(g, &psi);
            }
            (gates, psi)
        })
        .collect()
}

fn apply_vec(m: &Mat, v: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; v.len()];
    for (r, o) in out.iter_mut().enumerate() {
        for (c, x) in v.iter().enumerate() {
            *o += m[(r, c)] * *x;
        }
    }
    out
}

/// Average fidelity of a qubit-transfer operation on a 2-qubit system:
/// prepares each Pauli eigenstate on qubit 0, applies `op`, and compares the
/// reduced state of **qubit 1** against the input.
pub fn average_transfer_fidelity<F>(mut op: F) -> f64
where
    F: FnMut(&mut DensityMatrix),
{
    let probes = pauli_eigenstate_probes();
    let mut total = 0.0;
    for (gates, psi) in &probes {
        let mut rho = DensityMatrix::zero_state(2);
        for g in gates {
            rho.apply_1q(0, g);
        }
        op(&mut rho);
        let out = rho.partial_trace(&[1]);
        total += fidelity_with_pure(&out, psi);
    }
    total / probes.len() as f64
}

/// Average fidelity of an in-place operation on qubit `target` of an
/// `n`-qubit system: prepares each Pauli eigenstate on `target` (all other
/// qubits `|0⟩`), applies `op`, and compares the reduced state of `target`
/// against the input.
pub fn average_inplace_fidelity<F>(n: usize, target: usize, mut op: F) -> f64
where
    F: FnMut(&mut DensityMatrix),
{
    let probes = pauli_eigenstate_probes();
    let mut total = 0.0;
    for (gates, psi) in &probes {
        let mut rho = DensityMatrix::zero_state(n);
        for g in gates {
            rho.apply_1q(target, g);
        }
        op(&mut rho);
        let out = rho.partial_trace(&[target]);
        total += fidelity_with_pure(&out, psi);
    }
    total / probes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_qsim::channels::Kraus1;

    #[test]
    fn identity_transfer_via_swap_is_perfect() {
        let f = average_transfer_fidelity(|rho| {
            rho.apply_2q(0, 1, &Mat::swap());
        });
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn no_op_transfer_fails() {
        // Without a SWAP, qubit 1 stays |0>: average fidelity over the six
        // probes = (1 + 0 + 4*(1/2)) / 6 = 0.5.
        let f = average_transfer_fidelity(|_| {});
        assert!((f - 0.5).abs() < 1e-10);
    }

    #[test]
    fn inplace_identity_is_perfect() {
        let f = average_inplace_fidelity(3, 1, |_| {});
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inplace_depolarizing_matches_formula() {
        let p = 0.06;
        let ch = Kraus1::depolarizing(p).unwrap();
        let f = average_inplace_fidelity(2, 0, |rho| ch.apply(rho, 0));
        assert!((f - (1.0 - p + p / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn probe_states_are_normalized() {
        for (_, psi) in pauli_eigenstate_probes() {
            let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }
}
