//! Shared density-matrix probe routines for cell characterization.
//!
//! Characterization sweeps evaluate the same six Pauli-eigenstate probes
//! over and over (once per duration grid point per cell), so both the probe
//! definitions and the materialized probe *states* are built once and
//! cached: [`pauli_eigenstate_probes`] behind a `OnceLock`,
//! [`probe_states`] behind a per-`(n, target)` map. The averaged-fidelity
//! helpers hand the whole probe set to the caller as one slice so every
//! channel step can run through a batched [`DmBackend`] apply
//! (see `hetarch_qsim::backend`).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use hetarch_qsim::complex::C64;
use hetarch_qsim::fidelity::fidelity_with_pure;
use hetarch_qsim::matrix::Mat;
use hetarch_qsim::state::DensityMatrix;

static PROBES: OnceLock<Vec<(Vec<Mat>, Vec<C64>)>> = OnceLock::new();
#[allow(clippy::type_complexity)]
static PROBE_STATES: OnceLock<Mutex<HashMap<(usize, usize), Vec<DensityMatrix>>>> = OnceLock::new();

/// The six single-qubit Pauli eigenstates used for state-averaged fidelity,
/// as (preparation gates, resulting state vector). Built once and cached.
pub fn pauli_eigenstate_probes() -> &'static [(Vec<Mat>, Vec<C64>)] {
    PROBES
        .get_or_init(|| {
            let h = Mat::hadamard();
            let x = Mat::pauli_x();
            let s = Mat::s_gate();
            let preps: Vec<Vec<Mat>> = vec![
                vec![],                      // |0>
                vec![x.clone()],             // |1>
                vec![h.clone()],             // |+>
                vec![x.clone(), h.clone()],  // |->
                vec![h.clone(), s.clone()],  // |+i>
                vec![h.clone(), s.dagger()], // |-i>
            ];
            preps
                .into_iter()
                .map(|gates| {
                    let mut psi = vec![C64::ONE, C64::ZERO];
                    for g in &gates {
                        psi = apply_vec(g, &psi);
                    }
                    (gates, psi)
                })
                .collect()
        })
        .as_slice()
}

fn apply_vec(m: &Mat, v: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; v.len()];
    for (r, o) in out.iter_mut().enumerate() {
        for (c, x) in v.iter().enumerate() {
            *o += m[(r, c)] * *x;
        }
    }
    out
}

/// The six Pauli-eigenstate probe states materialized on an `n`-qubit
/// register with the eigenstate prepared on qubit `target` (all other
/// qubits `|0⟩`), in [`pauli_eigenstate_probes`] order.
///
/// The states are prepared once per `(n, target)` and served from a cache;
/// the returned vector is a fresh copy the caller may mutate freely.
pub fn probe_states(n: usize, target: usize) -> Vec<DensityMatrix> {
    let cache = PROBE_STATES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("probe-state cache poisoned");
    map.entry((n, target))
        .or_insert_with(|| {
            pauli_eigenstate_probes()
                .iter()
                .map(|(gates, _)| {
                    let mut rho = DensityMatrix::zero_state(n);
                    for g in gates {
                        rho.apply_1q(target, g);
                    }
                    rho
                })
                .collect()
        })
        .clone()
}

/// Average fidelity of a qubit-transfer operation on a 2-qubit system:
/// prepares each Pauli eigenstate on qubit 0, applies `op` to the whole
/// probe batch at once, and compares the reduced state of **qubit 1** of
/// each output against its input.
pub fn average_transfer_fidelity<F>(op: F) -> f64
where
    F: FnOnce(&mut [DensityMatrix]),
{
    let probes = pauli_eigenstate_probes();
    let mut states = probe_states(2, 0);
    op(&mut states);
    let mut total = 0.0;
    for (rho, (_, psi)) in states.iter().zip(probes) {
        let out = rho.partial_trace(&[1]);
        total += fidelity_with_pure(&out, psi);
    }
    total / probes.len() as f64
}

/// Average fidelity of an in-place operation on qubit `target` of an
/// `n`-qubit system: prepares each Pauli eigenstate on `target` (all other
/// qubits `|0⟩`), applies `op` to the whole probe batch at once, and
/// compares the reduced state of `target` of each output against its input.
pub fn average_inplace_fidelity<F>(n: usize, target: usize, op: F) -> f64
where
    F: FnOnce(&mut [DensityMatrix]),
{
    let probes = pauli_eigenstate_probes();
    let mut states = probe_states(n, target);
    op(&mut states);
    let mut total = 0.0;
    for (rho, (_, psi)) in states.iter().zip(probes) {
        let out = rho.partial_trace(&[target]);
        total += fidelity_with_pure(&out, psi);
    }
    total / probes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_qsim::channels::Kraus1;

    #[test]
    fn identity_transfer_via_swap_is_perfect() {
        let f = average_transfer_fidelity(|states| {
            for rho in states {
                rho.apply_2q(0, 1, &Mat::swap());
            }
        });
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn no_op_transfer_fails() {
        // Without a SWAP, qubit 1 stays |0>: average fidelity over the six
        // probes = (1 + 0 + 4*(1/2)) / 6 = 0.5.
        let f = average_transfer_fidelity(|_| {});
        assert!((f - 0.5).abs() < 1e-10);
    }

    #[test]
    fn inplace_identity_is_perfect() {
        let f = average_inplace_fidelity(3, 1, |_| {});
        assert!((f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inplace_depolarizing_matches_formula() {
        let p = 0.06;
        let ch = Kraus1::depolarizing(p).unwrap();
        let f = average_inplace_fidelity(2, 0, |states| ch.apply_batch(states, 0));
        assert!((f - (1.0 - p + p / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn probe_states_are_normalized() {
        for (_, psi) in pauli_eigenstate_probes() {
            let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_probe_states_match_fresh_preparation() {
        let cached = probe_states(2, 1);
        assert_eq!(cached.len(), 6);
        for ((gates, _), rho) in pauli_eigenstate_probes().iter().zip(&cached) {
            let mut fresh = DensityMatrix::zero_state(2);
            for g in gates {
                fresh.apply_1q(1, g);
            }
            assert!(fresh == *rho, "cached probe differs from fresh prep");
        }
        // A second lookup serves the same states from the cache.
        assert!(probe_states(2, 1) == cached);
    }
}
