//! The `SeqOp` standard cell (paper Table 2, row 3; §4.3 CAT generation).
//!
//! Two Register subcells whose compute devices are coupled to each other and
//! to a third, readout-equipped compute device. Optimized for many
//! sequential two-qubit operations between stored qubits, with parity
//! checks available on the side.

use hetarch_qsim::backend;
use hetarch_qsim::channels::{IdleParams, Kraus1, Kraus2};
use hetarch_qsim::complex::C64;
use hetarch_qsim::fidelity::fidelity_with_pure;
use hetarch_qsim::gates;
use hetarch_qsim::measure::project_z;
use hetarch_qsim::state::DensityMatrix;
use serde::{Deserialize, Serialize};

use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::device::{DeviceRole, DeviceSpec};
use hetarch_devices::rules::{validate, Violation};
use hetarch_devices::topology::{DeviceGraph, DeviceId};

use crate::channel::OpChannel;

/// The abstracted SeqOp channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeqOpChannel {
    /// A stored-qubit CNOT: load both operands, entangle, store back.
    pub seq_cnot: OpChannel,
    /// An ancilla parity check on the two in-compute qubits.
    pub parity: OpChannel,
    /// Storage idle parameters (per mode).
    pub storage_idle: IdleParams,
    /// Compute idle parameters.
    pub compute_idle: IdleParams,
    /// Storage modes per register.
    pub modes: u32,
}

/// The SeqOp standard cell.
///
/// # Examples
///
/// ```
/// use hetarch_cells::seqop::SeqOpCell;
/// use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};
///
/// let cell = SeqOpCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator())?;
/// let ch = cell.characterize();
/// assert!(ch.seq_cnot.fidelity > 0.9);
/// # Ok::<(), Vec<hetarch_devices::rules::Violation>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SeqOpCell {
    layout: DeviceGraph,
    ids: SeqOpIds,
}

/// Device ids of the SeqOp layout.
#[derive(Clone, Copy, Debug)]
pub struct SeqOpIds {
    /// First register's storage.
    pub s1: DeviceId,
    /// First register's compute.
    pub c1: DeviceId,
    /// Second register's storage.
    pub s2: DeviceId,
    /// Second register's compute.
    pub c2: DeviceId,
    /// Readout-equipped parity-check compute.
    pub cp: DeviceId,
}

impl SeqOpCell {
    /// Builds and design-rule-checks the cell: both registers use copies of
    /// `compute`/`storage`, and a third compute device carries the readout.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations.
    pub fn new(compute: DeviceSpec, storage: DeviceSpec) -> Result<Self, Vec<Violation>> {
        Self::new_with_calib(compute, storage, &CalibSnapshot::default())
    }

    /// Builds the cell with a fleet calibration snapshot applied: each of
    /// the five layout slots (`"seqop/s1"`, `"seqop/c1"`, `"seqop/s2"`,
    /// `"seqop/c2"`, `"seqop/cp"`) is individually overridden by the
    /// snapshot entry matching its label before design-rule checking, so a
    /// snapshot can describe a fleet where nominally-identical devices
    /// measured differently today. An empty snapshot yields the identical
    /// cell [`SeqOpCell::new`] would.
    ///
    /// # Errors
    ///
    /// Returns design-rule violations of the calibrated layout.
    pub fn new_with_calib(
        compute: DeviceSpec,
        storage: DeviceSpec,
        calib: &CalibSnapshot,
    ) -> Result<Self, Vec<Violation>> {
        assert_eq!(compute.role, DeviceRole::Compute);
        assert_eq!(storage.role, DeviceRole::Storage);
        let mut layout = DeviceGraph::new();
        let s1 = layout.add_device("seqop/s1", calib.apply("seqop/s1", &storage), false);
        let c1 = layout.add_device("seqop/c1", calib.apply("seqop/c1", &compute), false);
        let s2 = layout.add_device("seqop/s2", calib.apply("seqop/s2", &storage), false);
        let c2 = layout.add_device("seqop/c2", calib.apply("seqop/c2", &compute), false);
        let cp = layout.add_device("seqop/cp", calib.apply("seqop/cp", &compute), true);
        layout.connect(s1, c1);
        layout.connect(s2, c2);
        layout.connect(c1, c2);
        layout.connect(c1, cp);
        layout.connect(c2, cp);
        validate(&layout, 1)?;
        Ok(SeqOpCell {
            layout,
            ids: SeqOpIds { s1, c1, s2, c2, cp },
        })
    }

    /// The symbolic layout.
    pub fn layout(&self) -> &DeviceGraph {
        &self.layout
    }

    /// Device ids.
    pub fn ids(&self) -> SeqOpIds {
        self.ids
    }

    /// Characterizes the cell by density-matrix simulation.
    ///
    /// The stored-qubit CNOT is simulated on four qubits (two storage modes
    /// and the two register computes): load both operands, apply the CNOT,
    /// store back, with gate depolarizing and idle decay at every step. The
    /// fidelity averages nine product probes against the ideal CNOT output.
    pub fn characterize(&self) -> SeqOpChannel {
        // Per-slot specs: a calibration snapshot may have overridden each
        // layout slot individually, so every parameter is read from the node
        // it belongs to rather than from one shared compute/storage spec.
        let s1 = &self.layout.node(self.ids.s1).spec;
        let c1 = &self.layout.node(self.ids.c1).spec;
        let s2 = &self.layout.node(self.ids.s2).spec;
        let c2 = &self.layout.node(self.ids.c2).spec;
        let cp = &self.layout.node(self.ids.cp).spec;
        let g2_c1 = c1.gate_2q.expect("compute devices define 2q gates");
        let g2_c2 = c2.gate_2q.expect("compute devices define 2q gates");
        let t_read = cp.readout_time.expect("compute has readout");
        let storage_idle = IdleParams::new(s1.t1, s1.t2).expect("physical coherence");
        let compute_idle = IdleParams::new(c1.t1, c1.t2).expect("physical coherence");
        let idle_s2 = IdleParams::new(s2.t1, s2.t2).expect("physical coherence");
        let idle_c2 = IdleParams::new(c2.t1, c2.t2).expect("physical coherence");
        let idle_cp = IdleParams::new(cp.t1, cp.t2).expect("physical coherence");

        let depol_swap1 = Kraus2::depolarizing(s1.swap.error).expect("validated");
        let depol_swap2 = Kraus2::depolarizing(s2.swap.error).expect("validated");
        let depol_g2_c1 = Kraus2::depolarizing(g2_c1.error).expect("validated");
        let depol_g2_c2 = Kraus2::depolarizing(g2_c2.error).expect("validated");

        // Both registers' swaps run in parallel, so the load/store phase
        // lasts as long as the slower of the two (equal when uncalibrated).
        let swap_phase = s1.swap.time.max(s2.swap.time);

        // Idle channels are built once per (slot, phase duration) and reused
        // across probes, so each compiles its superoperator kernel exactly
        // once. Application order (storage slots 0, 3 then compute slots
        // 1, 2) matches the pre-calibration code path bit for bit.
        let slot_idles: [(usize, &IdleParams); 4] = [
            (0, &storage_idle),
            (3, &idle_s2),
            (1, &compute_idle),
            (2, &idle_c2),
        ];
        let channels_for = |t: f64| -> Vec<(usize, Kraus1)> {
            slot_idles
                .iter()
                .map(|&(q, p)| (q, p.channel(t).expect("valid")))
                .collect()
        };
        let idle_swap = channels_for(swap_phase);
        let idle_g2 = channels_for(g2_c1.time);

        // Qubits: 0 = s1 mode, 1 = c1, 2 = c2, 3 = s2 mode. All nine product
        // probes run the same circuit, so they are materialized up front and
        // every gate/channel step sweeps the whole batch — channel steps as
        // one batched backend apply each.
        let backend = backend::active();
        let idle_all = |states: &mut [DensityMatrix], chs: &[(usize, Kraus1)]| {
            for (q, ch) in chs {
                backend.apply_1q(ch, states, *q);
            }
        };
        let probes = [0usize, 1, 2]; // 0 -> |0>, 1 -> |1>, 2 -> |+>
        let inputs: Vec<(usize, usize)> = probes
            .iter()
            .flat_map(|&a| probes.iter().map(move |&b| (a, b)))
            .collect();
        let mut states: Vec<DensityMatrix> = inputs
            .iter()
            .map(|&(a, b)| {
                let mut rho = DensityMatrix::zero_state(4);
                prepare(&mut rho, 0, a);
                prepare(&mut rho, 3, b);
                rho
            })
            .collect();
        // Load both operands (parallel swaps).
        for rho in states.iter_mut() {
            gates::swap(rho, 0, 1);
            gates::swap(rho, 3, 2);
        }
        backend.apply_2q(&depol_swap1, &mut states, 0, 1);
        backend.apply_2q(&depol_swap2, &mut states, 3, 2);
        idle_all(&mut states, &idle_swap);
        // Entangle (c1 drives the CNOT, so its gate quality applies).
        for rho in states.iter_mut() {
            gates::cnot(rho, 1, 2);
        }
        backend.apply_2q(&depol_g2_c1, &mut states, 1, 2);
        idle_all(&mut states, &idle_g2);
        // Store back.
        for rho in states.iter_mut() {
            gates::swap(rho, 0, 1);
            gates::swap(rho, 3, 2);
        }
        backend.apply_2q(&depol_swap1, &mut states, 0, 1);
        backend.apply_2q(&depol_swap2, &mut states, 3, 2);
        idle_all(&mut states, &idle_swap);

        let mut total = 0.0;
        for (&(a, b), rho) in inputs.iter().zip(&states) {
            let out = rho.partial_trace(&[0, 3]);
            total += fidelity_with_pure(&out, &ideal_cnot_output(a, b));
        }
        let cnot_fid = (total / inputs.len() as f64).clamp(0.0, 1.0);
        let cnot_time = 2.0 * swap_phase + g2_c1.time;

        // Parity check on the two in-compute qubits via the cp ancilla:
        // CX(c1 -> cp), CX(c2 -> cp), measure cp. Characterized over the
        // four classical inputs on three qubits (0 = c1, 1 = c2, 2 = cp),
        // batched the same way.
        // The parity window spans both serial CXs plus readout; `x + x`
        // equals `2.0 * x` bit for bit, so the uncalibrated duration is
        // unchanged. Each compute slot decoheres with its own parameters.
        let parity_window = g2_c1.time + g2_c2.time + t_read;
        let idle_par_c1 = compute_idle.channel(parity_window).expect("valid");
        let idle_par_c2 = idle_c2.channel(parity_window).expect("valid");
        let idle_par_cp = idle_cp.channel(parity_window).expect("valid");
        let mut pstates: Vec<DensityMatrix> = (0..4usize)
            .map(|input| {
                let mut rho = DensityMatrix::zero_state(3);
                if input & 1 == 1 {
                    gates::x(&mut rho, 0);
                }
                if input & 2 == 2 {
                    gates::x(&mut rho, 1);
                }
                rho
            })
            .collect();
        for rho in pstates.iter_mut() {
            gates::cnot(rho, 0, 2);
        }
        backend.apply_2q(&depol_g2_c1, &mut pstates, 0, 2);
        for rho in pstates.iter_mut() {
            gates::cnot(rho, 1, 2);
        }
        backend.apply_2q(&depol_g2_c2, &mut pstates, 1, 2);
        backend.apply_1q(&idle_par_c1, &mut pstates, 0);
        backend.apply_1q(&idle_par_c2, &mut pstates, 1);
        backend.apply_1q(&idle_par_cp, &mut pstates, 2);
        let mut ptotal = 0.0;
        for (input, rho) in pstates.iter().enumerate() {
            let parity = ((input & 1) ^ ((input >> 1) & 1)) == 1;
            let mut branch = rho.clone();
            ptotal += project_z(&mut branch, 2, parity);
        }
        let parity_fid = (ptotal / 4.0).clamp(0.0, 1.0);

        // Summary fields describe the first register's slots (the channels
        // above already account for per-slot differences).
        SeqOpChannel {
            seq_cnot: OpChannel::new("seq_cnot", cnot_time, cnot_fid, 1),
            parity: OpChannel::new("parity_check", parity_window, parity_fid, 1),
            storage_idle,
            compute_idle,
            modes: s1.capacity,
        }
    }
}

fn prepare(rho: &mut DensityMatrix, q: usize, which: usize) {
    match which {
        0 => {}
        1 => gates::x(rho, q),
        _ => gates::h(rho, q),
    }
}

/// Ideal output state vector of `CNOT(a ⊗ b)` on qubits (0, 1) of a 2-qubit
/// system (control = qubit 0).
fn ideal_cnot_output(a: usize, b: usize) -> Vec<C64> {
    let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    let amp = |which: usize| -> Vec<C64> {
        match which {
            0 => vec![C64::ONE, C64::ZERO],
            1 => vec![C64::ZERO, C64::ONE],
            _ => vec![s, s],
        }
    };
    let va = amp(a);
    let vb = amp(b);
    // psi[b*2 + a] before CNOT; then CNOT with control a (bit 0), target b
    // (bit 1): |a b> -> |a, b^a>.
    let mut psi = vec![C64::ZERO; 4];
    for (ia, &xa) in va.iter().enumerate() {
        for (ib, &xb) in vb.iter().enumerate() {
            let out_b = ib ^ ia;
            psi[out_b * 2 + ia] += xa * xb;
        }
    }
    psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_devices::catalog::{fixed_frequency_qubit, on_chip_multimode_resonator};

    fn cell() -> SeqOpCell {
        SeqOpCell::new(fixed_frequency_qubit(), on_chip_multimode_resonator()).unwrap()
    }

    #[test]
    fn layout_is_rule_compliant_triangle() {
        let c = cell();
        let g = c.layout();
        assert_eq!(g.num_devices(), 5);
        assert_eq!(g.edges().len(), 5);
        assert_eq!(g.degree(c.ids().c1), 3);
        assert_eq!(g.degree(c.ids().cp), 2);
    }

    #[test]
    fn cnot_fidelity_in_expected_band() {
        let ch = cell().characterize();
        // Two noisy swaps (1e-2 each) + CNOT (1e-3): fidelity ~ 0.96–0.99.
        assert!(
            ch.seq_cnot.fidelity > 0.93 && ch.seq_cnot.fidelity < 0.999,
            "seq CNOT fidelity {}",
            ch.seq_cnot.fidelity
        );
        assert!((ch.seq_cnot.duration - (2.0 * 100e-9 + 100e-9)).abs() < 1e-15);
    }

    #[test]
    fn parity_check_close_to_parcheck_quality() {
        let ch = cell().characterize();
        assert!(
            ch.parity.fidelity > 0.97,
            "parity fidelity {}",
            ch.parity.fidelity
        );
    }

    #[test]
    fn ideal_cnot_output_sanity() {
        // a=1, b=0 -> |11>.
        let psi = ideal_cnot_output(1, 0);
        assert!(psi[3].approx_eq(C64::ONE, 1e-12));
        // a=+, b=0 -> Bell state.
        let psi = ideal_cnot_output(2, 0);
        assert!(psi[0].approx_eq(C64::real(std::f64::consts::FRAC_1_SQRT_2), 1e-12));
        assert!(psi[3].approx_eq(C64::real(std::f64::consts::FRAC_1_SQRT_2), 1e-12));
    }
}
