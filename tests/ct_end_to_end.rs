//! End-to-end code teleportation (paper §4.3 headline behaviours).

use hetarch::prelude::*;

fn quick_het(a: StabilizerCode, b: StabilizerCode, ts: f64) -> CtResult {
    let mut cfg = CtConfig::heterogeneous(a, b, ts);
    cfg.shots = 4_000;
    CtModule::new(cfg).evaluate()
}

fn quick_hom(a: StabilizerCode, b: StabilizerCode) -> CtResult {
    let mut cfg = CtConfig::homogeneous(a, b);
    cfg.shots = 4_000;
    CtModule::new(cfg).evaluate()
}

#[test]
fn heterogeneous_wins_for_every_paper_pair() {
    // Paper Table 4: heterogeneous CT beats homogeneous for every pair.
    let pairs: Vec<(StabilizerCode, StabilizerCode)> = vec![
        (reed_muller_15(), rotated_surface_code(3)),
        (rotated_surface_code(3), rotated_surface_code(4)),
        (color_17(), rotated_surface_code(4)),
        (steane(), rotated_surface_code(3)),
    ];
    for (a, b) in pairs {
        let names = format!("{} & {}", a.name(), b.name());
        let het = quick_het(a.clone(), b.clone(), 50e-3);
        let hom = quick_hom(a, b);
        assert!(
            het.logical_error_probability < hom.logical_error_probability,
            "{names}: het {} vs hom {}",
            het.logical_error_probability,
            hom.logical_error_probability
        );
    }
}

#[test]
fn ct_error_decreases_with_storage_coherence() {
    // Paper Fig. 12: error probability falls as Ts grows.
    let mut last = f64::MAX;
    for ts in [0.5e-3, 5e-3, 50e-3] {
        let r = quick_het(rotated_surface_code(3), rotated_surface_code(4), ts);
        assert!(
            r.logical_error_probability < last,
            "Ts {} ms should improve on the previous point",
            ts * 1e3
        );
        last = r.logical_error_probability;
    }
}

#[test]
fn breakdown_is_dominated_by_plus_state_preparation() {
    // With cheap EPs and small CATs, the logical |+> preparations are the
    // leading terms — matching the paper's observation that storage
    // lifetime requirements are driven by the stabilizer rounds.
    let r = quick_het(rotated_surface_code(3), reed_muller_15(), 50e-3);
    let b = r.breakdown;
    assert!(
        b.plus_a + b.plus_b > b.ep,
        "plus states should dominate EP cost"
    );
    assert!(r.logical_error_probability < 0.6);
    assert!(!r.ep_starved);
}

#[test]
fn composition_is_monotone_in_components() {
    // Worsening one sub-module (lower Ts) cannot improve the total.
    let good = quick_het(steane(), rotated_surface_code(3), 50e-3);
    let bad = quick_het(steane(), rotated_surface_code(3), 0.5e-3);
    assert!(bad.logical_error_probability >= good.logical_error_probability);
}
