//! Fault injection against the query server: client disconnects mid-sweep,
//! malformed/oversized/truncated frames, deterministic queue-full
//! backpressure, and executor panics — none of which may kill the accept
//! loop, the executors, or the shared cell library.

use std::net::Shutdown as NetShutdown;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use hetarch::serve::json::Json;
use hetarch::serve::{Client, Server, ServerConfig};

/// Serializes tests: the obs registry (asserted under `--features obs`) is
/// process-global, so concurrent servers would cross-pollute its counters.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(feature = "obs")]
fn obs_fresh() {
    hetarch::obs::force_enabled(true);
    hetarch::obs::reset();
}

#[cfg(not(feature = "obs"))]
fn obs_fresh() {}

fn block_request(millis: i64) -> Json {
    Json::obj([
        ("query", Json::Str("test_block".to_string())),
        ("millis", Json::Int(millis)),
    ])
}

fn status_of(reply: &[u8]) -> String {
    let parsed = hetarch::serve::json::parse(std::str::from_utf8(reply).unwrap()).unwrap();
    parsed
        .get("status")
        .and_then(Json::as_str)
        .expect("status field")
        .to_string()
}

/// Polls `stats` until `probe` passes or the deadline expires.
fn wait_for(server: &Server, what: &str, timeout: Duration, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(
            start.elapsed() < timeout,
            "timed out waiting for {what}; stats: {}",
            server.stats().to_json().render()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A client that disconnects mid-sweep cancels the execution: the shard
/// loop stops (well inside the time the full sweep would take) and the
/// executor is free for the next query.
#[test]
fn disconnect_mid_request_cancels_the_sweep() {
    let _guard = serialized();
    obs_fresh();
    let server = Server::start(ServerConfig {
        workers: 1,
        executors: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    // 400k shots of d=3 UEC would run for minutes in a debug build —
    // a bounded wall-clock on the *next* query only holds if cancellation
    // actually stops the shard loop.
    let sweep = Json::obj([
        ("query", Json::Str("sweep_uec".to_string())),
        ("distances", Json::Arr(vec![Json::Int(3)])),
        ("ts_values", Json::Arr(vec![Json::Num(5e-3)])),
        ("shots", Json::Int(400_000)),
        ("seed", Json::Int(5)),
    ]);
    let mut doomed = Client::connect(addr).expect("connect");
    doomed
        .send_raw_frame(sweep.render().as_bytes())
        .expect("send sweep");
    // Let the execution start, then vanish without reading the reply.
    wait_for(
        &server,
        "sweep execution to start",
        Duration::from_secs(10),
        || server.stats().executions.load(Relaxed) == 1,
    );
    std::thread::sleep(Duration::from_millis(200));
    drop(doomed);

    wait_for(
        &server,
        "disconnect-triggered cancellation",
        Duration::from_secs(10),
        || server.stats().cancellations.load(Relaxed) == 1,
    );

    // The executor must come free promptly — the current shard finishes,
    // the rest of the 400k shots are abandoned.
    let mut next = Client::connect(addr).expect("connect");
    next.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let start = Instant::now();
    let reply = next
        .request_raw(block_request(1).render().as_bytes())
        .expect("post-cancel query");
    assert_eq!(status_of(&reply), "ok");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "executor still busy {:?} after cancellation",
        start.elapsed()
    );

    #[cfg(feature = "obs")]
    {
        let report = hetarch::obs::report();
        assert_eq!(report.counters["serve.cancellations"], 1);
        assert!(
            report
                .counters
                .get("exec.cancellations")
                .copied()
                .unwrap_or(0)
                >= 1,
            "the shard loop itself must observe the cancellation"
        );
    }

    server.shutdown();
}

/// Malformed bodies get an error reply and the connection stays usable;
/// framing-level damage (oversized, truncated) gets an error reply and a
/// close — and none of it perturbs the accept loop.
#[test]
fn malformed_frames_get_error_replies_without_killing_the_server() {
    let _guard = serialized();
    obs_fresh();
    let server = Server::start(ServerConfig {
        max_frame_len: 1024,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    // Bad JSON, wrong types, unknown fields: error reply, same connection
    // keeps serving.
    let mut client = Client::connect(addr).expect("connect");
    for bad in [
        "not json at all".as_bytes(),
        b"{\"query\":\"sweep_uec\",\"distances\":[7]}" as &[u8],
        b"{\"query\":\"no_such_query\"}",
        b"{\"query\":\"test_block\",\"millis\":1,\"bogus\":2}",
        &[0xff, 0xfe, 0x00],
    ] {
        let reply = client.request_raw(bad).expect("error reply");
        assert_eq!(status_of(&reply), "error");
    }
    let stats = client.stats().expect("connection still serves");
    assert_eq!(
        stats.get("status").and_then(Json::as_str),
        Some("ok"),
        "connection survives malformed bodies"
    );
    assert_eq!(server.stats().malformed.load(Relaxed), 5);

    // Oversized frame: error reply naming the limit, then close.
    let mut oversized = Client::connect(addr).expect("connect");
    oversized
        .send_bytes(&4096u32.to_le_bytes())
        .expect("send prefix");
    let reply = oversized.read_reply().expect("oversized error reply");
    assert_eq!(status_of(&reply), "error");
    assert!(String::from_utf8_lossy(&reply).contains("1024-byte limit"));
    assert!(
        oversized.read_reply().is_err(),
        "framing is unrecoverable: server closes"
    );

    // Truncated frame: declare 100 bytes, send 10, half-close.
    let mut truncated = Client::connect(addr).expect("connect");
    truncated
        .send_bytes(&100u32.to_le_bytes())
        .expect("send prefix");
    truncated.send_bytes(&[b'x'; 10]).expect("send partial");
    truncated
        .stream()
        .shutdown(NetShutdown::Write)
        .expect("half-close");
    let reply = truncated.read_reply().expect("truncated error reply");
    assert_eq!(status_of(&reply), "error");
    assert!(String::from_utf8_lossy(&reply).contains("truncated"));

    // The accept loop is untouched: fresh connections still work.
    let mut fresh = Client::connect(addr).expect("accept loop alive");
    let reply = fresh
        .request_raw(block_request(1).render().as_bytes())
        .expect("fresh query");
    assert_eq!(status_of(&reply), "ok");
    assert_eq!(server.stats().malformed.load(Relaxed), 7);

    server.shutdown();
}

/// Queue-full backpressure is deterministic: one executor occupied, a
/// one-slot queue filled, and the third query is refused with `busy` and
/// the observed depth — it never blocks and never evicts queued work.
#[test]
fn full_queue_replies_busy_with_depth() {
    let _guard = serialized();
    obs_fresh();
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    // A: dequeued and executing (distinct millis keep the keys distinct —
    // identical queries would coalesce instead of queueing).
    let mut a = Client::connect(addr).expect("connect");
    a.send_raw_frame(block_request(1500).render().as_bytes())
        .expect("send a");
    wait_for(
        &server,
        "job A to occupy the executor",
        Duration::from_secs(10),
        || server.stats().dequeued.load(Relaxed) == 1,
    );

    // B: sitting in the queue (depth 1 == capacity).
    let mut b = Client::connect(addr).expect("connect");
    b.send_raw_frame(block_request(1501).render().as_bytes())
        .expect("send b");
    let mut probe = Client::connect(addr).expect("connect");
    wait_for(
        &server,
        "job B to fill the queue",
        Duration::from_secs(10),
        || {
            let stats = probe.stats().expect("stats");
            stats
                .get("result")
                .and_then(|r| r.get("queue_depth"))
                .and_then(Json::as_u64)
                == Some(1)
        },
    );

    // C: deterministically refused.
    let mut c = Client::connect(addr).expect("connect");
    let reply = c.request_json(&block_request(1502)).expect("busy reply");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("busy"));
    assert_eq!(reply.get("queue_depth").and_then(Json::as_u64), Some(1));
    assert_eq!(server.stats().busy_rejects.load(Relaxed), 1);

    // A and B still complete normally; C can retry once the queue drains.
    assert_eq!(status_of(&a.read_reply().expect("a reply")), "ok");
    assert_eq!(status_of(&b.read_reply().expect("b reply")), "ok");
    let retry = c.request_json(&block_request(1502)).expect("retry reply");
    assert_eq!(retry.get("status").and_then(Json::as_str), Some("ok"));

    server.shutdown();
}

/// A panicking query is contained: its waiters get an error reply, and the
/// server — including the shared `CellLibrary` — keeps answering.
#[test]
fn panicking_query_poisons_neither_server_nor_library() {
    let _guard = serialized();
    obs_fresh();
    let server = Server::start(ServerConfig {
        executors: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let panic_reply = client
        .request_json(&Json::obj([("query", Json::Str("test_panic".to_string()))]))
        .expect("panic turned into a reply");
    assert_eq!(
        panic_reply.get("status").and_then(Json::as_str),
        Some("error")
    );
    assert!(panic_reply
        .get("error")
        .and_then(Json::as_str)
        .expect("error message")
        .contains("panicked"));
    assert_eq!(server.stats().panics.load(Relaxed), 1);

    // The same executor thread and the shared library keep working: a real
    // sweep (which characterizes cells through the library) succeeds.
    let sweep = Json::obj([
        ("query", Json::Str("sweep_uec".to_string())),
        ("distances", Json::Arr(vec![Json::Int(3)])),
        ("ts_values", Json::Arr(vec![Json::Num(5e-3)])),
        ("shots", Json::Int(128)),
        ("seed", Json::Int(2)),
    ]);
    let reply = client.request_json(&sweep).expect("post-panic sweep");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    // And a retried panic key is not stuck: the failed slot was evicted,
    // so the retry executes (and fails) afresh rather than caching.
    let again = client
        .request_json(&Json::obj([("query", Json::Str("test_panic".to_string()))]))
        .expect("second panic reply");
    assert_eq!(again.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(server.stats().panics.load(Relaxed), 2);

    server.shutdown();
}
