//! Decoder differential suite: the approximate matching decoders
//! (`unionfind`, `greedy`) against the exhaustive `lookup` decoder on d=3
//! repetition and rotated surface codes, using the testkit harness.

use hetarch::stab::codes::{repetition_code, rotated_surface_code};
use hetarch::stab::decoder::{GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder};
use hetarch::testkit::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setups() -> Vec<CodeCapacity> {
    vec![
        CodeCapacity::new(repetition_code(3), 0.05),
        CodeCapacity::new(rotated_surface_code(3), 0.05),
    ]
}

fn decoders(setup: &CodeCapacity) -> (LookupDecoder, UnionFindDecoder, GreedyMatchingDecoder) {
    (
        LookupDecoder::new(setup.code(), setup.code().distance()),
        UnionFindDecoder::new(setup.graph()),
        GreedyMatchingDecoder::new(setup.graph()),
    )
}

/// Correctable errors (weight ≤ ⌊(d−1)/2⌋ = 1 at d=3) must be decoded to
/// the error's own coset by all three decoders: no decoder may *introduce*
/// a logical error where the reference shows none. Exhaustive, not sampled.
#[test]
fn no_decoder_increases_logical_error_class_on_correctable_errors() {
    for setup in setups() {
        let (lookup, uf, greedy) = decoders(&setup);
        let n = setup.code().num_qubits();
        for qubits in std::iter::once(vec![]).chain((0..n).map(|q| vec![q])) {
            let error = setup.x_error(&qubits);
            let outcome = decode_all(&setup, &lookup, &uf, &greedy, &error);
            assert!(
                !outcome.lookup_failed && !outcome.unionfind_failed && !outcome.greedy_failed,
                "{} error {qubits:?}: {outcome:?}",
                setup.code().name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random multi-qubit X errors: whenever a matching decoder disagrees
    /// with the true observable, the pattern must be genuinely ambiguous —
    /// its weight must exceed the correctable bound. Equivalently, the
    /// matching decoders never increase the logical error class of an
    /// error the reference decoder provably handles.
    fn matching_decoders_only_fail_beyond_the_correctable_bound(
        seed in 0u64..1_000_000,
        p in 0.02f64..0.25,
    ) {
        for setup in setups() {
            let (lookup, uf, greedy) = decoders(&setup);
            let t = (setup.code().distance() - 1) / 2;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..40 {
                let error = setup.sample_error(p, &mut rng);
                let outcome = decode_all(&setup, &lookup, &uf, &greedy, &error);
                if error.weight() <= t {
                    prop_assert!(
                        !outcome.lookup_failed
                            && !outcome.unionfind_failed
                            && !outcome.greedy_failed,
                        "{} weight-{} error decoded wrong: {:?}",
                        setup.code().name(),
                        error.weight(),
                        outcome
                    );
                }
            }
        }
    }
}

/// In aggregate, the approximate decoders cannot beat the exhaustive
/// minimum-weight reference: their failure rate is statistically no lower
/// than lookup's (and all stay well below 50% at this physical rate).
#[test]
fn aggregate_failure_rates_respect_the_reference_ordering() {
    let trials = 4_000u64;
    let p = 0.08;
    for setup in setups() {
        let (lookup, uf, greedy) = decoders(&setup);
        let mut rng = StdRng::seed_from_u64(97);
        let (mut fl, mut fu, mut fg) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            let error = setup.sample_error(p, &mut rng);
            let outcome = decode_all(&setup, &lookup, &uf, &greedy, &error);
            fl += u64::from(outcome.lookup_failed);
            fu += u64::from(outcome.unionfind_failed);
            fg += u64::from(outcome.greedy_failed);
        }
        let lookup_rate = BinomialTest::new(fl, trials);
        for (name, fails) in [("unionfind", fu), ("greedy", fg)] {
            let approx = BinomialTest::new(fails, trials);
            // One-sided: approximate decoder significantly better than the
            // exhaustive reference would indicate a bookkeeping bug.
            let z = two_proportion_z(approx, lookup_rate);
            assert!(
                z < 5.0,
                "{} {name} ({}/{trials}) significantly beats lookup ({}/{trials}), z = {z:.2}",
                setup.code().name(),
                fails,
                fl
            );
            assert!(
                approx.rate() < 0.5,
                "{} {name} failure rate {:.3} is no better than chance",
                setup.code().name(),
                approx.rate()
            );
        }
    }
}
