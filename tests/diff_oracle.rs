//! Differential-oracle property suite: random noisy Clifford circuits must
//! produce agreeing statistics across the density-matrix simulator, the
//! sharded Pauli-frame sampler, and the phenomenological composed-error
//! path (see `hetarch::testkit::oracle`).

use hetarch::testkit::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: 64 random circuits, three simulation paths,
    /// pairwise agreement under the 5σ sigma contract.
    fn three_paths_agree_on_random_noisy_cliffords(
        circuit in NoisyCircuit::arbitrary(),
        seed in 0u64..1_000_000,
    ) {
        DiffOracle::new(20_000, seed).assert_agrees(&circuit);
    }

    /// Noise configuration bounds are honored end to end: circuits drawn
    /// from a generated config still agree.
    fn generated_noise_configs_agree(
        config in NoiseConfig::arbitrary(),
        seed in 0u64..1_000_000,
    ) {
        let strategy = noisy_circuit(3, 4, 12, config);
        // One circuit per config case; proptest drives the outer loop.
        let circuit = {
            let mut rng = proptest::test_runner::TestRng::deterministic();
            // Perturb the deterministic stream per case via the seed.
            for _ in 0..(seed % 7) {
                let _ = strategy.generate(&mut rng);
            }
            strategy.generate(&mut rng)
        };
        DiffOracle::new(16_384, seed).check(&circuit).unwrap();
    }
}

/// Acceptance demonstration: a deliberately injected depolarizing-constant
/// bug (the sampler sees `1.5 × p` via the test-only hook) is caught by the
/// oracle, and the faithful lowering is not.
#[test]
fn injected_depolarizing_bug_is_caught_by_oracle() {
    let circuit = NoisyCircuit {
        num_qubits: 3,
        ops: vec![
            NoisyOp::X(0),
            NoisyOp::Depol(0, 0.1),
            NoisyOp::Cx(0, 1),
            NoisyOp::Depol(1, 0.08),
        ],
    };
    let faithful = DiffOracle::new(60_000, 41);
    faithful.check(&circuit).expect("faithful lowering agrees");

    let buggy = DiffOracle::new(60_000, 41).with_depol_scale(1.5);
    let failure = buggy.check(&circuit).expect_err("mutated constant caught");
    assert_eq!(failure.comparison, OracleComparison::SamplerVsExact);
    let msg = failure.to_string();
    assert!(
        msg.contains("frame sampler"),
        "failure names the culprit: {msg}"
    );
}

/// The shrinker reduces a padded failing circuit to its essential core.
#[test]
fn shrinker_minimizes_failing_circuits() {
    let padded = NoisyCircuit {
        num_qubits: 4,
        ops: vec![
            NoisyOp::H(2),
            NoisyOp::S(3),
            NoisyOp::Cz(2, 3),
            NoisyOp::X(0),
            NoisyOp::Depol(0, 0.12),
            NoisyOp::Cx(2, 3),
            NoisyOp::S(1),
        ],
    };
    let buggy = DiffOracle::new(60_000, 43).with_depol_scale(1.7);
    assert!(buggy.check(&padded).is_err());
    let minimal = buggy.minimize(&padded);
    assert!(
        minimal.ops.len() <= 2,
        "shrinker left {} ops: {:?}",
        minimal.ops.len(),
        minimal.ops
    );
    assert!(
        minimal
            .ops
            .iter()
            .any(|op| matches!(op, NoisyOp::Depol(0, _))),
        "the noise op pinning the bug survives: {:?}",
        minimal.ops
    );
    // The minimized circuit still reproduces the failure.
    assert!(buggy.check(&minimal).is_err());
}

/// Oracle verdicts are invariant under the worker count (the sharded
/// sampler derives shard seeds from the master seed, not the scheduler).
#[test]
fn oracle_verdict_is_worker_count_invariant() {
    let circuit = NoisyCircuit {
        num_qubits: 2,
        ops: vec![NoisyOp::X(1), NoisyOp::Depol(1, 0.07), NoisyOp::Cx(1, 0)],
    };
    for workers in [1, 8] {
        DiffOracle::new(20_000, 47)
            .with_workers(workers)
            .check(&circuit)
            .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
    }
}
