//! Golden-snapshot suite: byte-stable renderings of the characterized cell
//! channels and module-level rate curves at pinned seeds.
//!
//! Regenerate after an intentional model change with
//! `GOLDEN_UPDATE=1 cargo test -q --test golden_snapshots` and review the
//! diff of `tests/golden/*.txt`.

use std::path::{Path, PathBuf};

use hetarch::prelude::*;
use hetarch::stab::codes::{rotated_surface_code, steane};
use hetarch::testkit::prelude::*;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn spec(s: &mut Snapshot, prefix: &str, g: &hetarch::devices::GateSpec) {
    s.f64(&format!("{prefix}.time"), g.time)
        .f64(&format!("{prefix}.error"), g.error);
}

fn op(s: &mut Snapshot, prefix: &str, c: &OpChannel) {
    s.field(&format!("{prefix}.op"), &c.op)
        .f64(&format!("{prefix}.duration"), c.duration)
        .f64(&format!("{prefix}.fidelity"), c.fidelity)
        .field(&format!("{prefix}.concurrency"), c.concurrency);
}

fn idle(s: &mut Snapshot, prefix: &str, i: &IdleParams) {
    s.f64(&format!("{prefix}.t1"), i.t1)
        .f64(&format!("{prefix}.t2"), i.t2);
}

/// Renders every field of the four characterized cell channels, plus their
/// binary serde encodings, for the paper's standard device pairings.
fn cell_channel_snapshot() -> Snapshot {
    let lib = CellLibrary::new();
    let transmon = catalog::fixed_frequency_qubit();
    let resonator = catalog::multimode_resonator_3d();

    let mut s = Snapshot::new(
        "characterized cell channels: fixed-frequency transmon + 3D multimode resonator \
         (ParCheck: + flux-tunable transmon)",
    );

    let reg = lib.get::<RegisterCell>(&transmon, &resonator);
    s.section("register");
    op(&mut s, "load", &reg.load);
    idle(&mut s, "storage_idle", &reg.storage_idle);
    idle(&mut s, "compute_idle", &reg.compute_idle);
    s.field("modes", reg.modes).serde_hex("serde", &*reg);

    let pc = lib.get::<ParCheckCell>(&transmon, &catalog::flux_tunable_qubit());
    s.section("parcheck");
    op(&mut s, "parity", &pc.parity);
    spec(&mut s, "gate_1q", &pc.gate_1q);
    spec(&mut s, "gate_2q", &pc.gate_2q);
    s.f64("readout_time", pc.readout_time);
    idle(&mut s, "idle_a", &pc.idle_a);
    idle(&mut s, "idle_b", &pc.idle_b);
    s.serde_hex("serde", &*pc);

    let seq = lib.get::<SeqOpCell>(&transmon, &resonator);
    s.section("seqop");
    op(&mut s, "seq_cnot", &seq.seq_cnot);
    op(&mut s, "parity", &seq.parity);
    idle(&mut s, "storage_idle", &seq.storage_idle);
    idle(&mut s, "compute_idle", &seq.compute_idle);
    s.field("modes", seq.modes).serde_hex("serde", &*seq);

    let usc = lib.get::<UscCell>(&transmon, &resonator);
    s.section("usc");
    spec(&mut s, "swap", &usc.swap);
    spec(&mut s, "cx", &usc.cx);
    spec(&mut s, "gate_1q", &usc.gate_1q);
    s.f64("readout_time", usc.readout_time);
    idle(&mut s, "storage_idle", &usc.storage_idle);
    idle(&mut s, "compute_idle", &usc.compute_idle);
    s.field("capacity", usc.capacity)
        .field("registers", usc.registers);
    op(&mut s, "check2", &usc.check2);
    s.serde_hex("serde", &*usc);

    s
}

/// UEC logical-error-rate curve over storage coherence, at a pinned seed,
/// computed on the given pool (worker-count invariance is asserted by the
/// caller).
fn uec_rate_snapshot(pool: &WorkerPool) -> Snapshot {
    let shots = 2_000;
    let seed = 61;
    let mut s = Snapshot::new("UEC logical error rates, 2000 shots, seed 61");
    for code in [steane(), rotated_surface_code(3)] {
        for ts_ms in [0.5, 5.0, 50.0] {
            let usc = UscCell::new(
                catalog::coherence_limited_compute(0.5e-3),
                catalog::coherence_limited_storage(ts_ms * 1e-3),
            )
            .unwrap()
            .characterize();
            let r = UecModule::new(code.clone(), usc, UecNoise::default())
                .logical_error_rate_on(pool, shots, seed);
            s.section(&format!("{} ts={}ms", code.name(), ts_ms));
            s.f64("logical_error_rate", r.logical_error_rate)
                .f64("cycle_duration", r.cycle_duration)
                .field("shots", r.shots);
        }
    }
    s
}

/// Distillation module report for the paper's heterogeneous configuration
/// at a pinned seed.
fn distill_snapshot() -> Snapshot {
    let cfg = DistillConfig::heterogeneous(12.5e-3, 1e6, 7);
    let report = DistillModule::new(cfg).run(0.5e-3);
    let mut s = Snapshot::new("distillation report: heterogeneous ts=12.5ms, 1 MHz, seed 7");
    s.section("report");
    s.f64("duration", report.duration)
        .field("arrivals", report.arrivals)
        .field("rounds_attempted", report.rounds_attempted)
        .field("rounds_succeeded", report.rounds_succeeded)
        .field("delivered", report.delivered)
        .f64("delivered_rate_hz", report.delivered_rate_hz)
        .f64("best_fidelity", report.best_fidelity)
        .serde_hex("serde", &report);
    s
}

/// Weight-stratified rare-event report for a d=5 surface memory at a
/// pinned seed: headline estimate, error budget and the full per-stratum
/// tallies (prior, conditional failure rate, shots, enumeration flag).
fn rare_report_snapshot(pool: &WorkerPool) -> Snapshot {
    let memory = SurfaceMemory::new(
        5,
        2,
        SurfaceNoise {
            t_data: 1.0,
            t_anc: 1.0,
            p1: 5e-5,
            p2: 5e-4,
            p_meas: 2e-4,
            ..SurfaceNoise::default()
        },
    );
    let config = RareConfig {
        max_strata: 6,
        rel_tol: 0.5,
        shots_per_stratum: 512,
        enumerate_threshold: 256,
        ..RareConfig::default()
    };
    let outcome = memory.logical_error_rate_rare_on(
        pool,
        hetarch::stab::codes::SurfaceDecoder::UnionFind,
        config,
        41,
    );
    let converged = outcome.is_converged();
    let report = outcome.into_report();

    let mut s = Snapshot::new("d=5 rare-event report: stratified estimator, seed 41");
    s.section("report");
    s.f64("p_l", report.p_l)
        .f64("sigma", report.sigma)
        .f64("truncation_bound", report.truncation_bound)
        .field("total_shots", report.total_shots)
        .field("num_sites", report.num_sites)
        .field("converged", converged);
    for stratum in &report.strata {
        s.section(&format!("stratum w={}", stratum.weight));
        s.f64("prior", stratum.prior)
            .f64("failure_rate", stratum.failure_rate)
            .field("shots", stratum.shots)
            .field("failures", stratum.failures)
            .field("enumerated", stratum.enumerated);
    }
    s
}

/// Serve-layer snapshot: the always-on [`ServerStats`] counters after a
/// deterministic scripted session, plus the byte-exact sweep response.
///
/// Deliberately built from feature-independent pieces only (no `obs`
/// counters): the golden CI job runs without the `obs` feature. The script
/// is fully sequential on one connection, so every counter is exact, and
/// the caller asserts worker-count invariance across server pools.
fn serve_stats_snapshot(workers: usize) -> Snapshot {
    use hetarch::serve::json::Json;
    use hetarch::serve::{Client, Server, ServerConfig};

    let server = Server::start(ServerConfig {
        workers,
        executors: 1,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let sweep = Json::obj([
        ("query", Json::Str("sweep_uec".to_string())),
        ("distances", Json::Arr(vec![Json::Int(3)])),
        (
            "ts_values",
            Json::Arr(vec![Json::Num(0.5e-3), Json::Num(5e-3)]),
        ),
        ("shots", Json::Int(500)),
        ("seed", Json::Int(61)),
    ]);
    // 1: computed; 2: identical query → cache hit, same bytes.
    let cold = client.request_raw(sweep.render().as_bytes()).expect("cold");
    let warm = client.request_raw(sweep.render().as_bytes()).expect("warm");
    assert_eq!(cold, warm, "cache hit must reuse the exact bytes");
    // 3: malformed body → error reply, connection stays up.
    let bad = client.request_raw(b"not json").expect("malformed reply");
    assert!(String::from_utf8_lossy(&bad).contains("\"status\":\"error\""));
    // 4: contained executor panic.
    let panic_reply = client
        .request_raw(br#"{"query":"test_panic"}"#)
        .expect("panic reply");
    assert!(String::from_utf8_lossy(&panic_reply).contains("panicked"));

    let mut s = Snapshot::new(
        "serve counters + sweep response after a scripted session: \
         sweep, cache hit, malformed body, contained panic",
    );
    s.section("stats");
    s.field("counters", server.stats().to_json().render());
    s.section("sweep_response");
    s.field("bytes", String::from_utf8(cold).expect("UTF-8 response"));
    server.shutdown();
    s
}

#[test]
fn serve_stats_golden_is_worker_count_invariant() {
    let single = serve_stats_snapshot(1);
    let four = serve_stats_snapshot(4);
    assert_eq!(
        single.render(),
        four.render(),
        "serve counters and response bytes must not depend on the worker count"
    );
    assert_golden(&golden_dir(), "serve_stats", &single);
}

#[test]
fn rare_report_golden_is_worker_count_invariant() {
    let single = rare_report_snapshot(&WorkerPool::new(1));
    let eight = rare_report_snapshot(&WorkerPool::new(8));
    assert_eq!(
        single.render(),
        eight.render(),
        "rare-event report must not depend on the worker count"
    );
    assert_golden(&golden_dir(), "rare_report_d5", &single);
}

#[test]
fn cell_channel_goldens_are_bit_stable() {
    let first = cell_channel_snapshot();
    let second = cell_channel_snapshot();
    assert_eq!(
        first.render(),
        second.render(),
        "cell characterization must render identically across runs"
    );
    assert_golden(&golden_dir(), "cell_channels", &first);
}

#[test]
fn uec_rate_goldens_are_worker_count_invariant() {
    // HETARCH_WORKERS ∈ {1, 8}: the sharded Monte-Carlo seeding makes the
    // rendered curve identical regardless of parallelism.
    let single = uec_rate_snapshot(&WorkerPool::new(1));
    let eight = uec_rate_snapshot(&WorkerPool::new(8));
    assert_eq!(
        single.render(),
        eight.render(),
        "UEC rate curve must not depend on the worker count"
    );
    assert_golden(&golden_dir(), "uec_rates", &single);
}

#[test]
fn distill_report_golden_is_bit_stable() {
    let first = distill_snapshot();
    let second = distill_snapshot();
    assert_eq!(first.render(), second.render());
    assert_golden(&golden_dir(), "distill_report", &first);
}

/// Calibration-snapshot sweep golden: the committed fleet fixture drives a
/// `calib_sweep` through the exact serve evaluation path, side by side with
/// the uncalibrated sweep over the same axes. Pins (a) the strict schema
/// accepting the fixture, (b) the overrides demonstrably reaching
/// characterization (the two responses differ), and (c) byte-stability of
/// the calibrated response.
fn calib_sweep_snapshot(pool: &WorkerPool) -> Snapshot {
    use hetarch::serve::{evaluate, Query};

    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/fleet_calib_v1.json");
    let text = std::fs::read_to_string(&fixture).expect("read committed fleet fixture");
    let calib = CalibSnapshot::parse(&text).expect("fixture obeys the calib schema");
    assert!(!calib.is_empty(), "the fixture must carry overrides");

    let lib = CellLibrary::new();
    let token = hetarch::exec::CancelToken::new();
    let distances = vec![3, 5];
    let ts_values = vec![0.5e-3, 5e-3];
    let plain = Query::SweepUec {
        distances: distances.clone(),
        ts_values: ts_values.clone(),
        shots: 500,
        seed: 61,
    };
    let fleet = Query::CalibSweep {
        distances,
        ts_values,
        shots: 500,
        seed: 61,
        calib: calib.clone(),
    };
    assert_ne!(plain.key(), fleet.key(), "fleet sweeps must not coalesce");
    let nominal = evaluate(&plain, &lib, pool, &token)
        .expect("uncancelled sweep")
        .render();
    let calibrated = evaluate(&fleet, &lib, pool, &token)
        .expect("uncancelled calib sweep")
        .render();
    assert_ne!(
        nominal, calibrated,
        "fixture overrides must reach characterization and move the sweep"
    );

    let mut s = Snapshot::new(
        "calib_sweep over tests/fixtures/fleet_calib_v1.json vs the uncalibrated sweep, \
         d in {3,5} x ts in {0.5ms, 5ms}, 500 shots, seed 61",
    );
    s.section("snapshot");
    s.field("canonical_json", calib.to_json().render());
    s.section("nominal_response");
    s.field("bytes", nominal);
    s.section("fleet_response");
    s.field("bytes", calibrated);
    s
}

#[test]
fn calib_sweep_golden_is_worker_count_invariant() {
    let single = calib_sweep_snapshot(&WorkerPool::new(1));
    let four = calib_sweep_snapshot(&WorkerPool::new(4));
    assert_eq!(
        single.render(),
        four.render(),
        "calibrated sweep must not depend on the worker count"
    );
    assert_golden(&golden_dir(), "calib_sweep", &single);
}
