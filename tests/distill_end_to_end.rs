//! End-to-end entanglement distillation (paper §4.1 headline behaviours).

use hetarch::prelude::*;

#[test]
fn heterogeneous_system_delivers_at_low_generation_rates() {
    // Paper: heterogeneous systems still deliver around 100 kHz generation
    // while the homogeneous system fails below ~1000 kHz.
    let rate = 100e3;
    let het = DistillModule::new(DistillConfig::heterogeneous(12.5e-3, rate, 21)).run(20e-3);
    let hom = DistillModule::new(DistillConfig::homogeneous(rate, 21)).run(20e-3);
    assert!(het.delivered > 0, "heterogeneous must deliver at 100 kHz");
    assert!(
        hom.delivered <= het.delivered / 10,
        "homogeneous ({}) should essentially fail at 100 kHz vs het ({})",
        hom.delivered,
        het.delivered
    );
}

#[test]
fn storage_coherence_of_2_5ms_doubles_homogeneous_rate() {
    // Paper Fig. 4: Ts >= 2.5 ms outperforms the homogeneous system by 2x+.
    let rate = 1e6;
    let het = DistillModule::new(DistillConfig::heterogeneous(2.5e-3, rate, 23)).run(20e-3);
    let hom = DistillModule::new(DistillConfig::homogeneous(rate, 23)).run(20e-3);
    assert!(
        het.delivered_rate_hz >= 1.5 * hom.delivered_rate_hz.max(1.0),
        "het {} kHz vs hom {} kHz",
        het.delivered_rate_hz / 1e3,
        hom.delivered_rate_hz / 1e3
    );
}

#[test]
fn delivered_rate_increases_with_generation_rate() {
    let mut last = 0.0;
    for rate in [100e3, 1e6, 10e6] {
        let r = DistillModule::new(DistillConfig::heterogeneous(12.5e-3, rate, 25)).run(10e-3);
        assert!(
            r.delivered_rate_hz >= last,
            "rate should not decrease with generation rate"
        );
        last = r.delivered_rate_hz;
    }
    assert!(last > 100e3, "10 MHz generation should deliver >100 kHz");
}

#[test]
fn output_pairs_meet_the_target_fidelity() {
    let mut cfg = DistillConfig::heterogeneous(12.5e-3, 2e6, 27);
    cfg.consume_output = false;
    cfg.trace_interval = Some(2e-6);
    let report = DistillModule::new(cfg).run(200e-6);
    // Best output infidelity observed must beat the raw input band (0.01).
    let best = report
        .trace
        .iter()
        .filter_map(|p| p.output_infidelity)
        .fold(f64::MAX, f64::min);
    assert!(best < 0.01, "best output infidelity {best}");
}

#[test]
fn fig3_trace_shows_heterogeneous_retention() {
    // Output fidelity decays much slower with Ts = 12.5 ms than with the
    // homogeneous Ts = 0.5 ms.
    let trace_of = |cfg: DistillConfig| {
        let mut cfg = cfg;
        cfg.consume_output = false;
        cfg.trace_interval = Some(1e-6);
        DistillModule::new(cfg).run(100e-6)
    };
    let het = trace_of(DistillConfig::heterogeneous(12.5e-3, 2e6, 29));
    let hom = trace_of(DistillConfig::homogeneous(2e6, 29));
    let min_out = |r: &DistillReport| {
        r.trace
            .iter()
            .filter_map(|p| p.output_infidelity)
            .fold(f64::MAX, f64::min)
    };
    let het_min = min_out(&het);
    let hom_min = min_out(&hom);
    assert!(
        het_min < hom_min || hom.trace.iter().all(|p| p.output_infidelity.is_none()),
        "het minimum {het_min} should beat hom minimum {hom_min}"
    );
}

#[test]
fn scheduler_redistillation_priority_pays_off() {
    use hetarch::modules::distill::Policy;
    let rate = 1e6;
    let mut with = DistillConfig::heterogeneous(12.5e-3, rate, 31);
    with.policy = Policy::default();
    let mut without = with.clone();
    without.policy = Policy {
        redistill: false,
        ..Policy::default()
    };
    let a = DistillModule::new(with).run(10e-3);
    let b = DistillModule::new(without).run(10e-3);
    // Without re-distillation, staged pairs can never reach the target:
    // nothing (or almost nothing) is delivered.
    assert!(
        a.delivered > 2 * b.delivered,
        "redistillation {} vs ablation {}",
        a.delivered,
        b.delivered
    );
}
