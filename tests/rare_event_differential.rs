//! Differential validation of the weight-stratified rare-event estimator
//! (`hetarch::exec::rare`) against two oracles:
//!
//! 1. **The plain frequency estimator at high physical noise**, where both
//!    estimators resolve the same logical error rate and must agree under
//!    the [`CrossValidation`] contract (z-test with Hoeffding fallback,
//!    truncation allowance subtracted first).
//! 2. **Exact analytic probabilities** on a toy model small enough that
//!    every stratum is enumerated: the stratified estimate must match the
//!    closed form to 1e-12 with zero statistical variance.
//!
//! Plus the acceptance point the estimator exists for: a deep-subthreshold
//! d=7 surface memory where the plain estimator returns 0 failures at the
//! same shot budget, while the stratified report resolves the rate with an
//! explicit `(sigma, truncation_bound)` error budget — bit-identically
//! across worker counts.

use hetarch::exec::WorkerPool;
use hetarch::modules::faults::{stratified_rate, FaultDriver, ForcedFaults, SiteProbs};
use hetarch::prelude::*;
use hetarch::stab::codes::SurfaceDecoder;
use hetarch::testkit::prelude::*;
use proptest::prelude::*;

/// Plain-estimator observation as a [`BinomialTest`], recovering the
/// failure count from the reported rate.
fn plain_observation(memory: &SurfaceMemory, shots: usize, seed: u64) -> BinomialTest {
    let (per_shot, _per_round) = memory.logical_error_rate(shots, seed);
    let failures = (per_shot * shots as f64).round() as u64;
    BinomialTest::new(failures, shots as u64)
}

fn cross_validate(memory: &SurfaceMemory, config: RareConfig, shots: usize, seed: u64) {
    let plain = plain_observation(memory, shots, seed);
    let report = memory
        .logical_error_rate_rare(SurfaceDecoder::UnionFind, config, seed.wrapping_add(1))
        .into_report();
    CrossValidation::new(plain, report.p_l, report.sigma, report.truncation_bound).assert_agrees(
        5.0,
        &format!(
            "d={} rounds={} stratified vs plain (seed {seed})",
            memory.d, memory.rounds
        ),
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// At high physical noise the plain estimator is a trustworthy oracle:
    /// the stratified estimate must agree within the combined statistical
    /// error plus its own truncation allowance, for random noise scales and
    /// seeds on a d=3 memory.
    #[test]
    fn stratified_tracks_plain_on_d3_at_high_noise(
        scale in 1.0f64..3.0,
        seed in 0u64..1_000,
    ) {
        let noise = SurfaceNoise {
            p1: 1e-4 * scale,
            p2: 2e-3 * scale,
            p_meas: 1e-3 * scale,
            ..SurfaceNoise::default()
        };
        let memory = SurfaceMemory::new(3, 2, noise);
        let config = RareConfig {
            max_strata: 40,
            rel_tol: 0.05,
            shots_per_stratum: 2_000,
            ..RareConfig::default()
        };
        cross_validate(&memory, config, 6_000, seed);
    }
}

/// The same cross-validation on a d=5 memory (one pinned case — the d=5
/// circuit is too large for a proptest sweep at debug-build speed).
#[test]
fn stratified_tracks_plain_on_d5_at_high_noise() {
    let memory = SurfaceMemory::new(5, 2, SurfaceNoise::default());
    let config = RareConfig {
        max_strata: 48,
        rel_tol: 0.05,
        shots_per_stratum: 2_000,
        ..RareConfig::default()
    };
    cross_validate(&memory, config, 6_000, 271);
}

/// Exact-enumeration oracle: `n` independent classical flip sites, failure
/// iff an odd number trigger. The closed form is
/// `p_L = (1 − Π_i (1 − 2 p_i)) / 2`; with every stratum enumerable the
/// stratified estimate must reproduce it to 1e-12 with zero variance.
#[test]
fn enumerated_strata_match_analytic_parity_probability() {
    let probs = [0.013_f64, 0.007, 0.021, 0.004, 0.016];
    let sites: Vec<SiteProbs> = probs.iter().map(|&p| SiteProbs::Flip(p)).collect();
    let expected = (1.0 - probs.iter().map(|&p| 1.0 - 2.0 * p).product::<f64>()) / 2.0;

    let config = RareConfig {
        max_strata: probs.len() + 1,
        rel_tol: 0.0,
        abs_tol: 0.0,
        ..RareConfig::default()
    };
    let pool = WorkerPool::new(2);
    let outcome = stratified_rate(&pool, &sites, config, 5, 64, |driver: &mut ForcedFaults| {
        let mut parity = false;
        for &p in &probs {
            parity ^= driver.flip_site(p);
        }
        parity
    });
    assert!(outcome.is_converged(), "all strata enumerable: {outcome:?}");
    let report = outcome.into_report();
    assert!(
        (report.p_l - expected).abs() < 1e-12,
        "stratified {} vs analytic {expected}",
        report.p_l
    );
    assert_eq!(report.sigma, 0.0, "enumerated strata carry no variance");
    assert_eq!(report.total_shots, 0);
    assert!(report.strata.iter().all(|s| s.enumerated));
    assert!(report.truncation_bound.abs() < 1e-15);
}

/// The deep-subthreshold acceptance point: a d=7 memory at noise figures
/// where the plain estimator observes zero failures at the stratified
/// estimator's entire shot budget, yet the stratified report resolves a
/// positive rate at or below 1e-8 with an explicit error budget — and the
/// whole report is bit-identical for 1, 2 and 8 workers.
#[test]
fn deep_subthreshold_d7_point_is_resolved_and_worker_invariant() {
    let noise = SurfaceNoise {
        t_data: 100.0,
        t_anc: 100.0,
        p1: 1e-5,
        p2: 1e-4,
        p_meas: 5e-5,
        ..SurfaceNoise::default()
    };
    let memory = SurfaceMemory::new(7, 2, noise);
    let config = RareConfig {
        max_strata: 8,
        rel_tol: 0.5,
        abs_tol: 5e-9,
        shots_per_stratum: 1_024,
        ..RareConfig::default()
    };
    let seed = 97;

    let outcome = memory.logical_error_rate_rare_on(
        &WorkerPool::new(1),
        SurfaceDecoder::UnionFind,
        config,
        seed,
    );
    assert!(outcome.is_converged(), "tail bound must reach 5e-9");
    let baseline = outcome.into_report();
    for workers in [2, 8] {
        let report = memory
            .logical_error_rate_rare_on(
                &WorkerPool::new(workers),
                SurfaceDecoder::UnionFind,
                config,
                seed,
            )
            .into_report();
        assert_eq!(
            report, baseline,
            "stratified report differs at {workers} workers"
        );
    }

    // The full certified rate — point estimate plus rigorous truncation
    // bound — sits at or below 1e-8, with the statistical uncertainty
    // reported alongside. The plain estimator cannot certify anything
    // tighter than ~1/shots ≈ 1e-4 here.
    assert!(
        baseline.p_l + baseline.truncation_bound <= 1e-8,
        "certified rate {:.3e} + {:.3e} should be ≤ 1e-8",
        baseline.p_l,
        baseline.truncation_bound
    );
    assert!(baseline.sigma.is_finite() && baseline.sigma >= 0.0);
    assert!(baseline.truncation_bound > 0.0, "bound must be explicit");
    assert!(
        baseline.total_shots > 0,
        "at least one stratum must be sampled"
    );

    // The plain estimator at the stratified run's entire budget sees
    // nothing: every one of its shots lands in the overwhelming zero- and
    // low-weight mass.
    let (plain_rate, _) = memory.logical_error_rate(baseline.total_shots, seed);
    assert_eq!(
        plain_rate, 0.0,
        "plain estimator should be blind at this budget"
    );
}
