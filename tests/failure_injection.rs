//! Failure injection: drive every subsystem into pathological regimes —
//! saturated noise, degenerate capacities, empty structures — and verify
//! graceful, physical behaviour rather than panics or silent nonsense.

use hetarch::prelude::*;

#[test]
fn distillation_survives_maximal_noise_sources() {
    // Raw pairs at the worst allowed infidelity band and a crushing rate.
    let mut cfg = DistillConfig::heterogeneous(0.5e-3, 50e6, 1);
    cfg.source = EpSource::new(50e6, 0.74, 0.75);
    let report = DistillModule::new(cfg).run(0.2e-3);
    // Nothing distillable from F ~ 0.25 pairs; the module must not deliver.
    assert_eq!(report.delivered, 0);
    assert!(report.arrivals > 1000, "arrivals {}", report.arrivals);
    // The scheduler should refuse hopeless rounds (improvement gate).
    assert_eq!(report.rounds_attempted, 0);
}

#[test]
fn distillation_with_capacity_one_memories() {
    let mut cfg = DistillConfig::heterogeneous(12.5e-3, 2e6, 2);
    cfg.input_capacity = 1; // can never hold two pairs: no rounds possible
    cfg.output_capacity = 1;
    let report = DistillModule::new(cfg).run(0.5e-3);
    assert_eq!(report.rounds_attempted, 0);
    assert_eq!(report.delivered, 0);
}

#[test]
fn uec_under_fifty_percent_measurement_flips() {
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    let noise = UecNoise {
        p2q: 0.0,
        p_swap: 0.0,
        meas_flip: 0.5, // syndromes carry zero information
    };
    let m = UecModule::new(steane(), usc, noise);
    let r = m.logical_error_rate(4_000, 3);
    // Decoding from random syndromes applies random low-weight corrections;
    // the perfect round cleans up, so errors stay bounded well below chance.
    assert!(r.logical_error_rate < 0.5, "rate {}", r.logical_error_rate);
}

#[test]
fn uec_at_maximal_gate_noise_saturates_sanely() {
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    let noise = UecNoise {
        p2q: 1.0,
        p_swap: 1.0,
        meas_flip: 0.5,
    };
    let r = UecModule::new(steane(), usc, noise).logical_error_rate(2_000, 5);
    assert!(r.logical_error_rate <= 1.0);
    assert!(
        r.logical_error_rate > 0.3,
        "total noise should overwhelm a d=3 code: {}",
        r.logical_error_rate
    );
}

#[test]
fn surface_memory_at_noise_saturation() {
    let noise = SurfaceNoise {
        p2: 0.25,
        p_meas: 0.25,
        ..SurfaceNoise::default()
    };
    let mem = SurfaceMemory::new(3, 3, noise);
    let (per_shot, per_round) = mem.logical_error_rate(2_000, 7);
    // Fully randomized logical bit: per-shot rate near 50%.
    assert!(per_shot > 0.3 && per_shot <= 0.65, "per_shot {per_shot}");
    assert!(per_round <= per_shot);
}

#[test]
fn union_find_handles_degenerate_graphs() {
    // All-boundary graph: every defect matches straight out.
    let mut g = MatchingGraph::new(4);
    for v in 0..4u32 {
        g.add_edge(v, None, 0.1, u64::from(v == 0));
    }
    let dec = UnionFindDecoder::new(&g);
    assert_eq!(dec.decode(&[true, true, true, true]), 1);
    assert_eq!(dec.decode(&[false, true, true, false]), 0);

    // Graph with an isolated (edgeless) detector: an empty syndrome decodes;
    // a defect there has no edges to grow and peels to nothing.
    let mut g = MatchingGraph::new(2);
    g.add_edge(0, None, 0.1, 0);
    let dec = UnionFindDecoder::new(&g);
    assert_eq!(dec.decode(&[false, false]), 0);
}

#[test]
fn lookup_decoder_with_zero_weight_budget() {
    let code = color_17();
    let dec = LookupDecoder::new(&code, 0);
    assert_eq!(dec.coverage(), 1);
    // Every syndrome falls back to identity; the caller's perfect-round
    // machinery is responsible for the rest.
    let e = PauliString::from_sparse(17, &[(3, Pauli::Y)]);
    assert!(dec.decode(&code.syndrome_of(&e)).is_identity());
}

#[test]
fn ep_source_degenerate_rates() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    // An absurdly slow source still produces positive inter-arrival times.
    let slow = EpSource::new(1e-3, 0.05, 0.06);
    let dt = slow.next_interarrival(&mut rng);
    assert!(dt > 0.0 && dt.is_finite());
    // An absurdly fast source produces tiny but positive times.
    let fast = EpSource::new(1e12, 0.05, 0.06);
    let dt = fast.next_interarrival(&mut rng);
    assert!(dt > 0.0 && dt < 1e-9);
}

#[test]
fn ct_module_reports_starved_links() {
    // A nearly-dead EP source cannot feed distillation: the CT module must
    // flag starvation instead of silently reporting a good state.
    let mut cfg = CtConfig::homogeneous(rotated_surface_code(3), rotated_surface_code(4));
    cfg.ep_rate_hz = 2e4; // 20 kHz: hopeless for the homogeneous memory
    cfg.shots = 1_000;
    let starved = CtModule::new(cfg.clone()).evaluate();
    assert!(starved.ep_starved, "20 kHz homogeneous link should starve");
    assert!(starved.ep_fidelity < cfg.ep_target);

    let mut healthy_cfg = cfg;
    healthy_cfg.ep_rate_hz = 1e6;
    let healthy = CtModule::new(healthy_cfg).evaluate();
    assert!(!healthy.ep_starved);
    assert!(
        starved.logical_error_probability > healthy.logical_error_probability,
        "starved {} should exceed healthy {}",
        starved.logical_error_probability,
        healthy.logical_error_probability
    );
}

#[test]
fn sharded_engine_zero_shot_requests() {
    use hetarch::exec::WorkerPool;
    let pool = WorkerPool::new(4);

    // Zero Monte-Carlo shots: a defined (zero-rate) answer, not a panic.
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    let r = UecModule::new(steane(), usc, UecNoise::default()).logical_error_rate_on(&pool, 0, 1);
    assert_eq!(r.shots, 0);
    assert_eq!(r.logical_error_rate, 0.0);

    // Zero frame-sampler shots: an empty but well-formed bit table.
    let mut c = Circuit::new(1);
    c.depolarize1(0.1, &[0]);
    c.measure(&[0], 0.0);
    let out = hetarch::stab::frame::FrameSampler::sample(&c, 0, 1, &pool);
    assert_eq!(out.meas_flips.count_ones(0), 0);

    // Zero surface-memory shots.
    let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
    let (f, p) =
        mem.logical_error_rate_on(&pool, hetarch::stab::codes::SurfaceDecoder::UnionFind, 0, 1);
    assert_eq!(f, 0.0);
    assert_eq!(p, 0.0);
}

#[test]
fn sharded_engine_non_divisible_and_tiny_workloads() {
    use hetarch::exec::WorkerPool;
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    let m = UecModule::new(steane(), usc, UecNoise::default());
    let pool = WorkerPool::new(8);
    // A single shot falls into the single-shard path on every pool size.
    let single = m.logical_error_rate_on(&pool, 1, 2);
    assert_eq!(single.shots, 1);
    assert!(single.logical_error_rate == 0.0 || single.logical_error_rate == 1.0);
    assert_eq!(
        single.logical_error_rate.to_bits(),
        m.logical_error_rate_on(&WorkerPool::new(1), 1, 2)
            .logical_error_rate
            .to_bits()
    );
    // A shot count straddling shard boundaries (512-shot shards) agrees
    // between pool sizes even when the tail shard is almost empty.
    let ragged = m.logical_error_rate_on(&pool, 513, 2);
    assert_eq!(
        ragged.logical_error_rate.to_bits(),
        m.logical_error_rate_on(&WorkerPool::new(3), 513, 2)
            .logical_error_rate
            .to_bits()
    );
}

#[test]
fn panicking_shard_does_not_poison_the_pool() {
    use hetarch::exec::WorkerPool;
    let pool = WorkerPool::new(4);
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run_shards(10_000, 256, 0, |shard| {
            if shard.index == 7 {
                panic!("injected shard failure");
            }
            shard.len
        })
    }));
    assert!(
        boom.is_err(),
        "the shard panic must propagate to the caller"
    );
    // The pool is stateless: the same pool value keeps working afterwards.
    let total: usize = pool
        .run_shards(10_000, 256, 0, |shard| shard.len)
        .iter()
        .sum();
    assert_eq!(total, 10_000);
}

#[test]
fn rare_estimator_with_zero_strata_is_explicitly_unconverged() {
    // max_strata = 0 evaluates nothing: the only honest answer is an
    // Unconverged lower bound of 0 with the full probability mass charged
    // to the truncation bound — never a silently wrong converged number.
    let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
    let config = RareConfig {
        max_strata: 0,
        ..RareConfig::default()
    };
    let outcome =
        mem.logical_error_rate_rare(hetarch::stab::codes::SurfaceDecoder::UnionFind, config, 3);
    assert!(!outcome.is_converged());
    let report = outcome.into_report();
    assert_eq!(report.p_l, 0.0);
    assert_eq!(report.truncation_bound, 1.0);
    assert!(report.strata.is_empty());
    assert_eq!(report.total_shots, 0);
}

#[test]
fn rare_prior_handles_weights_beyond_the_site_count() {
    use hetarch::exec::rare::WeightPrior;
    let prior = WeightPrior::binomial(4, 0.2);
    assert_eq!(prior.num_sites(), 4);
    assert_eq!(prior.pmf(5), 0.0);
    assert_eq!(prior.pmf(100), 0.0);
    assert_eq!(prior.tail_above(4), 0.0);
    assert_eq!(prior.tail_above(100), 0.0);

    // Asking the estimator for far more strata than sites must converge
    // after the real ones and never fabricate weight > n entries.
    use hetarch::exec::rare::{StratifiedEstimator, StratumEval};
    let outcome =
        StratifiedEstimator::new(&prior, RareConfig::default()).run(|_w| StratumEval::Enumerated {
            failure_probability: 0.0,
            configs: 1,
        });
    assert!(outcome.is_converged());
    let report = outcome.into_report();
    assert!(report.strata.iter().all(|s| s.weight <= 4));
}

#[test]
fn rare_estimator_with_degenerate_site_probabilities() {
    use hetarch::exec::WorkerPool;
    use hetarch::modules::faults::{stratified_rate, FaultDriver, ForcedFaults, SiteProbs};
    let pool = WorkerPool::new(2);
    let parity_shot = |probs: &'static [f64]| {
        move |driver: &mut ForcedFaults| {
            let mut parity = false;
            for &p in probs {
                parity ^= driver.flip_site(p);
            }
            parity
        }
    };

    // p = 0 everywhere: all mass in the w = 0 stratum, exact zero rate.
    static ZEROS: [f64; 3] = [0.0; 3];
    let outcome = stratified_rate(
        &pool,
        &[
            SiteProbs::Flip(0.0),
            SiteProbs::Flip(0.0),
            SiteProbs::Flip(0.0),
        ],
        RareConfig::default(),
        1,
        64,
        parity_shot(&ZEROS),
    );
    assert!(outcome.is_converged());
    let report = outcome.into_report();
    assert_eq!(report.p_l, 0.0);
    assert_eq!(report.truncation_bound, 0.0);

    // p = 1 everywhere: the prior is a point mass at w = n; the lower
    // strata are infeasible and must be skipped, not sampled into a panic.
    static ONES: [f64; 3] = [1.0; 3];
    let outcome = stratified_rate(
        &pool,
        &[
            SiteProbs::Flip(1.0),
            SiteProbs::Flip(1.0),
            SiteProbs::Flip(1.0),
        ],
        RareConfig::default(),
        1,
        64,
        parity_shot(&ONES),
    );
    assert!(outcome.is_converged());
    let report = outcome.into_report();
    // Three certain flips: odd parity, deterministic failure.
    assert_eq!(report.p_l, 1.0);
    assert_eq!(report.sigma, 0.0);
}

#[test]
fn rare_estimator_reports_unconverged_when_tolerance_is_unreachable() {
    // Two strata cannot push the tail of a high-noise d=3 memory below an
    // absurdly tight tolerance: the estimator must say so explicitly and
    // still report an honest (lower-bound) estimate and tail.
    let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
    let config = RareConfig {
        max_strata: 2,
        rel_tol: 1e-9,
        abs_tol: 1e-30,
        shots_per_stratum: 256,
        ..RareConfig::default()
    };
    let outcome =
        mem.logical_error_rate_rare(hetarch::stab::codes::SurfaceDecoder::UnionFind, config, 5);
    assert!(
        !outcome.is_converged(),
        "2 strata cannot reach rel_tol 1e-9"
    );
    let report = outcome.into_report();
    assert!(report.truncation_bound > 0.0);
    assert!(report.p_l >= 0.0 && report.p_l <= 1.0);
    assert_eq!(report.strata.len(), 2);
}

#[test]
fn panicking_shard_inside_a_stratum_does_not_poison_the_pool() {
    use hetarch::exec::WorkerPool;
    use hetarch::modules::faults::{stratified_rate, FaultDriver, ForcedFaults, SiteProbs};
    let pool = WorkerPool::new(4);
    let sites = [SiteProbs::Flip(0.01), SiteProbs::Flip(0.02)];
    let config = RareConfig {
        enumerate_threshold: 0, // force every stratum through the pool
        ..RareConfig::default()
    };
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stratified_rate(&pool, &sites, config, 9, 16, |driver: &mut ForcedFaults| {
            // The w = 0 stratum replays no faults; any forced flip (w ≥ 1)
            // detonates inside a pool worker.
            if driver.flip_site(0.01) || driver.flip_site(0.02) {
                panic!("injected stratum failure");
            }
            false
        })
    }));
    assert!(boom.is_err(), "the stratum panic must reach the caller");
    // The pool is stateless: the same pool keeps working afterwards.
    let total: usize = pool
        .run_shards(10_000, 256, 0, |shard| shard.len)
        .iter()
        .sum();
    assert_eq!(total, 10_000);
}

#[test]
fn density_matrix_rejects_unphysical_inputs() {
    use hetarch::qsim::error::QsimError;
    assert!(matches!(
        IdleParams::new(100e-6, 300e-6),
        Err(QsimError::InvalidParameter(_))
    ));
    assert!(Kraus1::depolarizing(1.0001).is_err());
    assert!(Kraus2::depolarizing(-0.1).is_err());
    assert!(DensityMatrix::from_pure(&[]).is_err());
}

#[test]
fn design_rules_catch_every_violation_class() {
    let compute = catalog::fixed_frequency_qubit();
    let storage = catalog::multimode_resonator_3d();

    // DR1: five-way compute fanout.
    let mut g = DeviceGraph::new();
    let hub = g.add_device("hub", compute.clone(), false);
    for i in 0..5 {
        let c = g.add_device(format!("c{i}"), compute.clone(), false);
        g.connect(hub, c);
    }
    assert!(validate(&g, 0).is_err());

    // DR2+DR3: storage fanout.
    let mut g = DeviceGraph::new();
    let s = g.add_device("s", storage.clone(), false);
    let c1 = g.add_device("c1", compute.clone(), false);
    let c2 = g.add_device("c2", compute.clone(), false);
    g.connect(s, c1);
    g.connect(s, c2);
    assert!(validate(&g, 0).is_err());

    // DR4: readout bloat.
    let mut g = DeviceGraph::new();
    let a = g.add_device("a", compute.clone(), true);
    let b = g.add_device("b", compute, true);
    g.connect(a, b);
    assert!(validate(&g, 1).is_err());
    assert!(validate(&g, 2).is_ok());
}
