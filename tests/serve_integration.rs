//! End-to-end checks for the design-space query server: coalescing,
//! caching, byte-level determinism against the direct evaluation path, and
//! graceful drain-on-shutdown.
//!
//! The obs-feature sections additionally assert the `serve.*` counters; the
//! always-on [`ServerStats`] carry the load in default builds. Every test
//! takes one process-wide lock because the obs registry is global.

use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use hetarch::serve::json::Json;
use hetarch::serve::{evaluate, server, Client, Query, Server, ServerConfig};
use hetarch_cells::CellLibrary;
use hetarch_exec::{CancelToken, WorkerPool};

/// Serializes tests: the obs registry (asserted under `--features obs`) is
/// process-global, so concurrent servers would cross-pollute its counters.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(feature = "obs")]
fn obs_fresh() {
    hetarch::obs::force_enabled(true);
    hetarch::obs::reset();
}

#[cfg(not(feature = "obs"))]
fn obs_fresh() {}

fn start(config: ServerConfig) -> Server {
    Server::start(config).expect("bind ephemeral port")
}

fn sweep_request_sorted() -> Json {
    Json::obj([
        ("query", Json::Str("sweep_uec".to_string())),
        ("distances", Json::Arr(vec![Json::Int(3)])),
        (
            "ts_values",
            Json::Arr(vec![Json::Num(0.5e-3), Json::Num(5e-3)]),
        ),
        ("shots", Json::Int(256)),
        ("seed", Json::Int(61)),
    ])
}

/// Same canonical query, different bytes: axes reordered.
fn sweep_request_shuffled() -> Json {
    Json::obj([
        ("query", Json::Str("sweep_uec".to_string())),
        ("distances", Json::Arr(vec![Json::Int(3)])),
        (
            "ts_values",
            Json::Arr(vec![Json::Num(5e-3), Json::Num(0.5e-3)]),
        ),
        ("shots", Json::Int(256)),
        ("seed", Json::Int(61)),
    ])
}

fn block_request(millis: i64) -> Json {
    Json::obj([
        ("query", Json::Str("test_block".to_string())),
        ("millis", Json::Int(millis)),
    ])
}

/// 16 concurrent identical queries perform exactly one execution.
///
/// Determinism trick: a single executor is first occupied by a blocking
/// query, so the identical sweep requests all arrive while the sweep job is
/// still pending — admission order cannot race execution speed. Half the
/// clients send a byte-different but canonically equal body (reordered
/// axes) to prove coalescing keys on the canonical form.
#[test]
fn identical_concurrent_queries_coalesce_to_one_execution() {
    let _guard = serialized();
    obs_fresh();
    let server = start(ServerConfig {
        executors: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the lone executor so the sweep job stays queued.
    let mut blocker = Client::connect(addr).expect("connect");
    blocker
        .send_raw_frame(block_request(400).render().as_bytes())
        .expect("send blocker");
    std::thread::sleep(Duration::from_millis(100));

    const CLIENTS: usize = 16;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let responses: Vec<Vec<u8>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let barrier = barrier.clone();
                s.spawn(move || {
                    let request = if i % 2 == 0 {
                        sweep_request_sorted()
                    } else {
                        sweep_request_shuffled()
                    };
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client
                        .request_raw(request.render().as_bytes())
                        .expect("sweep reply")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    blocker.read_reply().expect("blocker reply");

    // All 16 responses are byte-identical.
    for response in &responses[1..] {
        assert_eq!(response, &responses[0]);
    }
    // ... and bit-identical to the direct evaluation path on a fresh
    // library and a different worker count.
    let lib = CellLibrary::new();
    let pool = WorkerPool::new(3);
    let query = Query::SweepUec {
        distances: vec![3],
        ts_values: vec![0.5e-3, 5e-3],
        shots: 256,
        seed: 61,
    };
    let direct = evaluate(&query, &lib, &pool, &CancelToken::new()).expect("direct eval");
    assert_eq!(
        responses[0],
        server::ok_response(direct).render().into_bytes()
    );

    // Exactly one sweep execution; the blocker accounts for the second.
    let stats = server.stats();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(stats.executions.load(Relaxed), 2, "block + one sweep");
    assert_eq!(stats.coalesced.load(Relaxed), CLIENTS as u64 - 1);
    assert_eq!(stats.cache_hits.load(Relaxed), 0);
    assert_eq!(stats.requests.load(Relaxed), CLIENTS as u64 + 1);
    assert_eq!(stats.busy_rejects.load(Relaxed), 0);
    assert_eq!(stats.panics.load(Relaxed), 0);

    #[cfg(feature = "obs")]
    {
        let report = hetarch::obs::report();
        assert_eq!(report.counters["serve.executions"], 2);
        assert_eq!(report.counters["serve.coalesce_hits"], CLIENTS as u64 - 1);
        assert_eq!(report.counters["serve.requests"], CLIENTS as u64 + 1);
    }

    server.shutdown();
}

/// A repeated query after completion is a cache hit: same bytes, no
/// re-execution, visible in the `stats` query.
#[test]
fn completed_queries_are_served_from_cache() {
    let _guard = serialized();
    obs_fresh();
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let request = sweep_request_sorted();

    let mut first = Client::connect(addr).expect("connect");
    let cold = first
        .request_raw(request.render().as_bytes())
        .expect("cold reply");
    // A different connection, byte-different body, same canonical key.
    let mut second = Client::connect(addr).expect("connect");
    let warm = second
        .request_raw(sweep_request_shuffled().render().as_bytes())
        .expect("warm reply");
    assert_eq!(cold, warm);

    let stats = second.stats().expect("stats");
    let serve = stats
        .get("result")
        .and_then(|r| r.get("serve"))
        .expect("serve block");
    assert_eq!(serve.get("executions").and_then(Json::as_u64), Some(1));
    assert_eq!(serve.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(serve.get("coalesced").and_then(Json::as_u64), Some(0));
    assert!(stats
        .get("result")
        .and_then(|r| r.get("queue_depth"))
        .is_some());
    #[cfg(feature = "obs")]
    assert!(
        stats.get("result").and_then(|r| r.get("obs")).is_some(),
        "obs builds surface the global counters in stats"
    );

    server.shutdown();
}

/// One connection can pipeline several different queries, and a rare-event
/// query round-trips with the expected fields.
#[test]
fn connections_pipeline_distinct_queries() {
    let _guard = serialized();
    obs_fresh();
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let rare = Json::obj([
        ("query", Json::Str("rare_uec".to_string())),
        ("distance", Json::Int(3)),
        ("ts", Json::Num(5e-3)),
        ("max_strata", Json::Int(3)),
        ("shots_per_stratum", Json::Int(64)),
        ("seed", Json::Int(9)),
    ]);
    let reply = client.request_json(&rare).expect("rare reply");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    let result = reply.get("result").expect("result");
    assert!(result.get("p_l").and_then(Json::as_f64).is_some());
    assert!(result
        .get("truncation_bound")
        .and_then(Json::as_f64)
        .is_some());
    assert_eq!(result.get("distance").and_then(Json::as_u64), Some(3));

    let block = client.request_json(&block_request(1)).expect("block reply");
    assert_eq!(block.get("status").and_then(Json::as_str), Some("ok"));

    server.shutdown();
}

/// A `shutdown` query drains the server: in-flight work completes, the
/// wait() call returns, and the listener goes away.
#[test]
fn shutdown_query_drains_gracefully() {
    let _guard = serialized();
    obs_fresh();
    let server = start(ServerConfig::default());
    let addr = server.local_addr();

    // Put one slow job in flight, then request shutdown from another
    // connection: the job must still complete with a real answer.
    let mut slow = Client::connect(addr).expect("connect");
    slow.send_raw_frame(block_request(300).render().as_bytes())
        .expect("send slow");
    std::thread::sleep(Duration::from_millis(50));

    let mut admin = Client::connect(addr).expect("connect");
    let reply = admin.shutdown_server().expect("shutdown reply");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));

    let waiter = std::thread::spawn(move || {
        let start = Instant::now();
        server.wait();
        start.elapsed()
    });

    let slow_reply = slow.read_reply().expect("in-flight job still answered");
    let text = String::from_utf8(slow_reply).unwrap();
    assert!(text.contains("\"blocked_ms\":300"), "got {text}");
    drop(slow);
    drop(admin);

    let drained_in = waiter.join().expect("wait() returns after drain");
    assert!(
        drained_in < Duration::from_secs(10),
        "drain took {drained_in:?}"
    );
}

/// A server restarted with `--cache PATH` re-answers a prior sweep with
/// zero new characterization simulations: the first server persists its
/// [`CellLibrary`] on graceful drain, the second loads it on boot, and the
/// warm sweep — including a calibrated one — is all cache hits with
/// byte-identical replies.
#[test]
fn restarted_server_answers_prior_sweeps_without_new_simulations() {
    let _guard = serialized();
    obs_fresh();
    let path = std::env::temp_dir().join(format!("hetarch-serve-warm-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let calib_request = Json::obj([
        ("query", Json::Str("calib_sweep".to_string())),
        ("distances", Json::Arr(vec![Json::Int(3)])),
        ("ts_values", Json::Arr(vec![Json::Num(5e-3)])),
        ("shots", Json::Int(256)),
        ("seed", Json::Int(61)),
        (
            "calib",
            Json::obj([
                ("version", Json::Int(1)),
                ("device", Json::Str("fridge-a".to_string())),
                (
                    "qubits",
                    Json::obj([(
                        "usc/s0",
                        Json::obj([("t1", Json::Num(2e-4)), ("t2", Json::Num(2e-4))]),
                    )]),
                ),
            ]),
        ),
    ]);

    // First life: cold server simulates, answers, drains, persists.
    let (cold_plain, cold_calib, cold_misses) = {
        let server = start(ServerConfig {
            library_path: Some(path.clone()),
            ..ServerConfig::default()
        });
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let plain = client
            .request_raw(sweep_request_sorted().render().as_bytes())
            .expect("cold sweep");
        let calib = client
            .request_raw(calib_request.render().as_bytes())
            .expect("cold calib sweep");
        let misses = server.library_stats().misses;
        assert!(misses > 0, "the cold server must have simulated something");
        drop(client);
        server.shutdown();
        (plain, calib, misses)
    };
    assert!(path.exists(), "graceful drain persists the library");

    // Second life: the restarted server loads the persisted library and
    // re-answers both sweeps — calibrated and not — without a single new
    // characterization.
    {
        let server = start(ServerConfig {
            library_path: Some(path.clone()),
            ..ServerConfig::default()
        });
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let warm_plain = client
            .request_raw(sweep_request_sorted().render().as_bytes())
            .expect("warm sweep");
        let warm_calib = client
            .request_raw(calib_request.render().as_bytes())
            .expect("warm calib sweep");
        assert_eq!(warm_plain, cold_plain, "warm replies are byte-identical");
        assert_eq!(
            warm_calib, cold_calib,
            "warm calib replies are byte-identical"
        );
        let stats = server.library_stats();
        assert_eq!(stats.misses, 0, "warm start must not simulate anything");
        assert_eq!(
            stats.hits, cold_misses,
            "every cold-run characterization is re-served from the loaded cache"
        );
        drop(client);
        server.shutdown();
    }

    let _ = std::fs::remove_file(&path);
}
