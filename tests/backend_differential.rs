//! Differential property suite for the `DmBackend` abstraction: the batched
//! backend (`apply_superop_*_batch`, lane-blocked over states) must agree
//! with the scalar reference backend (per-state kernel application) and with
//! the Kraus-sum reference (`apply_reference`) on random mixed states and
//! random batch sizes — including the degenerate sizes 0 and 1 and sizes
//! that exercise both the full-lane path and the scalar remainder. On top
//! of the ≤1e-12 analytic bound, the scalar and batched outputs are checked
//! *bit-identical*: lane blocking never mixes floats between states, so the
//! two backends perform the same operations in the same order per state.
//!
//! The suite closes the contract at the module layer too:
//! `DistillModule::run_batch_on` (whose DEJMPS table and pair states ride
//! the batched path) must stay worker-count invariant, and the
//! cross-simulator [`DiffOracle`] must pass when pinned to either backend.

use hetarch::modules::distill::{DistillConfig, DistillModule};
use hetarch::qsim::backend::{DmBackend, BATCHED, SCALAR};
use hetarch::qsim::channels::{IdleParams, Kraus1, Kraus2};
use hetarch::qsim::gates;
use hetarch::qsim::state::DensityMatrix;
use hetarch::testkit::prelude::*;
use proptest::prelude::*;

const TOL: f64 = 1e-12;

fn assert_states_close(batched: &DensityMatrix, reference: &DensityMatrix) {
    assert_eq!(batched.dim(), reference.dim());
    for (a, b) in batched.as_slice().iter().zip(reference.as_slice()) {
        assert!(
            a.approx_eq(*b, TOL),
            "batched {a} vs reference {b} (|Δ| = {:.3e})",
            (*a - *b).abs()
        );
    }
}

/// A random mixed state on `n` qubits (same construction as the kernel
/// differential suite): random local rotations, an entangling ladder, and a
/// touch of depolarizing noise so the state has full-rank support.
fn random_state(n: usize, angles: &[f64], noise: f64) -> DensityMatrix {
    let mut rho = DensityMatrix::zero_state(n);
    for (q, chunk) in angles.chunks(3).take(n).enumerate() {
        gates::rx(&mut rho, q, chunk[0]);
        gates::ry(&mut rho, q, chunk[1]);
        gates::rz(&mut rho, q, chunk[2]);
    }
    for q in 1..n {
        gates::cnot(&mut rho, q - 1, q);
    }
    let depol = Kraus1::depolarizing(noise).expect("valid probability");
    for q in 0..n {
        depol.apply(&mut rho, q);
    }
    rho
}

/// A batch of `count` distinct random mixed states sharing qubit count `n`.
fn random_batch(n: usize, count: usize, angles: &[f64], noise: f64) -> Vec<DensityMatrix> {
    (0..count)
        .map(|i| {
            // Offset the angles per state so batch members differ.
            let shifted: Vec<f64> = angles.iter().map(|a| a + 0.1 * i as f64).collect();
            random_state(n, &shifted, noise)
        })
        .collect()
}

/// A random single-qubit CPTP channel assembled from the library primitives.
fn kraus1_strategy() -> impl Strategy<Value = Kraus1> {
    let primitive = (0u8..5, 0.0..0.9f64).prop_map(|(which, p)| match which {
        0 => Kraus1::depolarizing(p).unwrap(),
        1 => Kraus1::amplitude_damping(p).unwrap(),
        2 => Kraus1::phase_flip(p).unwrap(),
        3 => Kraus1::bit_flip(p).unwrap(),
        _ => IdleParams::new(300e-6, 150e-6)
            .unwrap()
            .channel(p * 100e-6)
            .unwrap(),
    });
    proptest::collection::vec(primitive, 1..=3).prop_map(|chain| {
        chain
            .iter()
            .skip(1)
            .fold(chain[0].clone(), |acc, c| acc.then(c))
    })
}

/// A random two-qubit CPTP channel: a tensor product of two single-qubit
/// channels or a two-qubit depolarizing channel.
fn kraus2_strategy() -> impl Strategy<Value = Kraus2> {
    prop_oneof![
        (kraus1_strategy(), kraus1_strategy()).prop_map(|(a, b)| {
            let mut ops = Vec::new();
            for ka in a.ops() {
                for kb in b.ops() {
                    ops.push(ka.kron(kb));
                }
            }
            Kraus2::new(ops).expect("kron of CPTP sets is CPTP")
        }),
        (0.0..0.9f64).prop_map(|p| Kraus2::depolarizing(p).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property for single-qubit channels: on every state of a
    /// random batch, the batched backend agrees with the scalar backend
    /// bitwise and with the Kraus-sum reference to ≤1e-12. Batch sizes 0
    /// and 1 are generated (0..=9), covering empty input, the pure remainder
    /// path, full lanes, and lanes-plus-remainder.
    fn backend_1q_matches_scalar_and_reference(
        ch in kraus1_strategy(),
        angles in proptest::collection::vec(0.0..std::f64::consts::TAU, 9),
        noise in 0.0..0.2f64,
        q in 0usize..3,
        count in 0usize..=9,
    ) {
        let via_batched = {
            let mut states = random_batch(3, count, &angles, noise);
            BATCHED.apply_1q(&ch, &mut states, q);
            states
        };
        let via_scalar = {
            let mut states = random_batch(3, count, &angles, noise);
            SCALAR.apply_1q(&ch, &mut states, q);
            states
        };
        let via_reference = {
            let mut states = random_batch(3, count, &angles, noise);
            for rho in states.iter_mut() {
                ch.apply_reference(rho, q);
            }
            states
        };
        prop_assert_eq!(via_batched.len(), count);
        // Bitwise: lane blocking performs the same float ops per state.
        prop_assert_eq!(&via_batched, &via_scalar);
        for (b, r) in via_batched.iter().zip(&via_reference) {
            assert_states_close(b, r);
        }
    }

    /// The same property for two-qubit channels on 4-qubit states.
    fn backend_2q_matches_scalar_and_reference(
        ch in kraus2_strategy(),
        angles in proptest::collection::vec(0.0..std::f64::consts::TAU, 12),
        noise in 0.0..0.2f64,
        pair in prop_oneof![Just((0usize, 1usize)), Just((3, 1)), Just((2, 0)), Just((1, 3))],
        count in 0usize..=9,
    ) {
        let via_batched = {
            let mut states = random_batch(4, count, &angles, noise);
            BATCHED.apply_2q(&ch, &mut states, pair.0, pair.1);
            states
        };
        let via_scalar = {
            let mut states = random_batch(4, count, &angles, noise);
            SCALAR.apply_2q(&ch, &mut states, pair.0, pair.1);
            states
        };
        let via_reference = {
            let mut states = random_batch(4, count, &angles, noise);
            for rho in states.iter_mut() {
                ch.apply_reference(rho, pair.0, pair.1);
            }
            states
        };
        prop_assert_eq!(via_batched.len(), count);
        prop_assert_eq!(&via_batched, &via_scalar);
        for (b, r) in via_batched.iter().zip(&via_reference) {
            assert_states_close(b, r);
        }
    }

    /// The single-state convenience wrappers route through the same code as
    /// the slice entry points.
    fn backend_one_state_wrappers_agree(
        ch in kraus1_strategy(),
        angles in proptest::collection::vec(0.0..std::f64::consts::TAU, 9),
        q in 0usize..3,
    ) {
        let mut via_one = random_state(3, &angles, 0.05);
        let mut via_slice = via_one.clone();
        BATCHED.apply_1q_one(&ch, &mut via_one, q);
        BATCHED.apply_1q(&ch, std::slice::from_mut(&mut via_slice), q);
        prop_assert_eq!(via_one, via_slice);
    }
}

/// The module-layer closure: `DistillModule::run_batch_on` threads its pair
/// states and DEJMPS lookup table through the active (batched) backend, and
/// the result must stay bit-identical across worker counts — batching is a
/// per-shard layout decision, never a semantic one.
#[test]
fn distill_batch_reports_are_worker_count_invariant() {
    use hetarch::exec::WorkerPool;
    let mut config = DistillConfig::heterogeneous(2.5e-3, 1e6, 7);
    config.seed = 7;
    let module = DistillModule::new(config);
    let one = module.run_batch_on(&WorkerPool::new(1), 500e-6, 6);
    for workers in [2, 8] {
        let many = module.run_batch_on(&WorkerPool::new(workers), 500e-6, 6);
        // DistillReport: PartialEq over every field, floats included.
        assert_eq!(one, many, "worker count {workers} changed the reports");
    }
}

/// Cross-model closure: the differential oracle passes when pinned to
/// either backend explicitly — the sampler and composed-error models agree
/// with the exact path regardless of how the exact path batches.
#[test]
fn oracle_agrees_under_both_backends() {
    let circuit = NoisyCircuit {
        num_qubits: 3,
        ops: vec![
            NoisyOp::H(0),
            NoisyOp::Depol(0, 0.11),
            NoisyOp::Cx(0, 1),
            NoisyOp::X(2),
            NoisyOp::Depol(1, 0.06),
            NoisyOp::Cx(1, 2),
            NoisyOp::Depol(2, 0.09),
        ],
    };
    DiffOracle::new(40_000, 29)
        .with_backend(&SCALAR)
        .assert_agrees(&circuit);
    DiffOracle::new(40_000, 29)
        .with_backend(&BATCHED)
        .assert_agrees(&circuit);
}
