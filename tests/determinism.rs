//! Worker-count-invariance regression tests for the sharded Monte-Carlo
//! execution engine (`hetarch::exec`).
//!
//! Every sharded entry point must produce **bit-identical** results for any
//! worker count at a fixed seed, and across repeated runs at the same worker
//! count: shard boundaries and per-shard RNG streams are derived from
//! `(total, shard_size, seed)` alone, and reduction happens in shard-index
//! order.

use hetarch::exec::WorkerPool;
use hetarch::modules::uec::chain::ChainUecModule;
use hetarch::prelude::*;
use hetarch::stab::frame::FrameSampler;

fn usc(ts: f64) -> UscChannel {
    UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(ts),
    )
    .unwrap()
    .characterize()
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn uec_module_rate_is_worker_count_invariant() {
    let module = UecModule::new(steane(), usc(50e-3), UecNoise::default());
    // Non-divisible by the 512-shot shard size: exercises a partial tail.
    let shots = 1_300;
    let baseline = module.logical_error_rate_on(&WorkerPool::new(1), shots, 7);
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let a = module.logical_error_rate_on(&pool, shots, 7);
        let b = module.logical_error_rate_on(&pool, shots, 7);
        assert_eq!(
            a.logical_error_rate.to_bits(),
            baseline.logical_error_rate.to_bits(),
            "UecModule rate differs at {workers} workers"
        );
        assert_eq!(
            a.logical_error_rate.to_bits(),
            b.logical_error_rate.to_bits(),
            "UecModule rate differs across runs at {workers} workers"
        );
        assert_eq!(a.shots, shots);
    }
}

#[test]
fn chain_uec_rate_is_worker_count_invariant() {
    let module = ChainUecModule::new(steane(), usc(50e-3), 2, UecNoise::default());
    let shots = 900;
    let baseline = module.logical_error_rate_on(&WorkerPool::new(1), shots, 11);
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let a = module.logical_error_rate_on(&pool, shots, 11);
        let b = module.logical_error_rate_on(&pool, shots, 11);
        assert_eq!(
            a.logical_error_rate.to_bits(),
            baseline.logical_error_rate.to_bits(),
            "ChainUecModule rate differs at {workers} workers"
        );
        assert_eq!(
            a.logical_error_rate.to_bits(),
            b.logical_error_rate.to_bits()
        );
    }
}

#[test]
fn frame_sampler_words_are_worker_count_invariant() {
    let mem = SurfaceMemory::new(3, 3, SurfaceNoise::default());
    let circuit = mem.circuit();
    // Two full 4096-shot shards plus a ragged tail.
    let shots = 2 * 4096 + 77;
    let baseline = FrameSampler::sample(&circuit, shots, 13, &WorkerPool::new(1));
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let a = FrameSampler::sample(&circuit, shots, 13, &pool);
        let b = FrameSampler::sample(&circuit, shots, 13, &pool);
        assert_eq!(
            a.meas_flips, baseline.meas_flips,
            "frame-sampler words differ at {workers} workers"
        );
        assert_eq!(a.meas_flips, b.meas_flips);
    }
}

#[test]
fn surface_memory_rate_is_worker_count_invariant() {
    let mem = SurfaceMemory::new(3, 3, SurfaceNoise::default());
    let shots = 3_000;
    let (f1, p1) = {
        let pool = WorkerPool::new(1);
        mem.logical_error_rate_on(
            &pool,
            hetarch::stab::codes::SurfaceDecoder::UnionFind,
            shots,
            5,
        )
    };
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let (fa, pa) = mem.logical_error_rate_on(
            &pool,
            hetarch::stab::codes::SurfaceDecoder::UnionFind,
            shots,
            5,
        );
        let (fb, pb) = mem.logical_error_rate_on(
            &pool,
            hetarch::stab::codes::SurfaceDecoder::UnionFind,
            shots,
            5,
        );
        assert_eq!(
            pa.to_bits(),
            p1.to_bits(),
            "surface rate differs at {workers} workers"
        );
        assert_eq!(fa.to_bits(), f1.to_bits());
        assert_eq!(pa.to_bits(), pb.to_bits());
        assert_eq!(fa.to_bits(), fb.to_bits());
    }
}

#[test]
fn stratified_rare_report_is_worker_count_invariant() {
    let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
    // Force the sampling path on several strata (tiny enumerate threshold)
    // so the invariance claim covers the conditioned per-shard RNG streams,
    // not just the serial enumeration walk.
    let config = RareConfig {
        max_strata: 6,
        rel_tol: 0.5,
        shots_per_stratum: 700, // non-divisible by the shard size: ragged tail
        enumerate_threshold: 8,
        ..RareConfig::default()
    };
    let which = hetarch::stab::codes::SurfaceDecoder::UnionFind;
    let baseline = mem
        .logical_error_rate_rare_on(&WorkerPool::new(1), which, config, 43)
        .into_report();
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let a = mem
            .logical_error_rate_rare_on(&pool, which, config, 43)
            .into_report();
        let b = mem
            .logical_error_rate_rare_on(&pool, which, config, 43)
            .into_report();
        // Full per-stratum tallies, not just the headline estimate.
        assert_eq!(
            a, baseline,
            "stratified report differs at {workers} workers"
        );
        assert_eq!(a, b, "stratified report differs across runs");
    }
}

#[test]
fn stratified_rare_report_is_dm_backend_invariant() {
    use hetarch::qsim::backend::{force_active, BackendChoice};
    // The UEC module characterizes its cells through the density-matrix
    // backend before any stabilizer sampling happens; both backends are
    // bit-identical by contract, so the stratified stratum tallies must not
    // move when `HETARCH_DM_BACKEND` (here: the runtime override) flips.
    let config = RareConfig {
        max_strata: 4,
        rel_tol: 0.5,
        shots_per_stratum: 512,
        enumerate_threshold: 64,
        ..RareConfig::default()
    };
    let pool = WorkerPool::new(4);
    let batched = UecModule::new(steane(), usc(50e-3), UecNoise::default())
        .logical_error_rate_rare_on(&pool, config, 29)
        .into_report();
    force_active(Some(BackendChoice::Scalar));
    let scalar = UecModule::new(steane(), usc(50e-3), UecNoise::default())
        .logical_error_rate_rare_on(&pool, config, 29)
        .into_report();
    force_active(None);
    assert_eq!(
        batched, scalar,
        "stratum tallies must not depend on the DM backend"
    );
}

#[test]
fn dse_sweep_is_worker_count_invariant() {
    let space = DesignSpace::new(vec![
        Axis::new("ts", vec![1e-3, 5e-3, 25e-3]),
        Axis::new("seed", vec![1.0, 2.0]),
    ]);
    let eval = |p: &hetarch::dse::Point| {
        let m = UecModule::new(steane(), usc(p.get("ts")), UecNoise::default());
        m.logical_error_rate_on(&WorkerPool::new(1), 200, p.get("seed") as u64)
            .logical_error_rate
    };
    let serial = hetarch::dse::sweep::sweep_with_workers(space.points(), eval, 1);
    for workers in [2, 8] {
        let parallel = hetarch::dse::sweep::sweep_with_workers(space.points(), eval, workers);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0, "point order differs at {workers} workers");
            assert_eq!(
                s.1.to_bits(),
                p.1.to_bits(),
                "sweep value differs at {workers} workers"
            );
        }
    }
}
