//! Cross-validation between the two independent simulation substrates: the
//! density-matrix simulator (hetarch-qsim) and the stabilizer tableau /
//! frame sampler (hetarch-stab).

use hetarch::prelude::*;
use hetarch::testkit::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies the same random Clifford circuit to both simulators and compares
/// single-qubit Z-measurement probabilities.
#[test]
fn tableau_matches_density_matrix_on_random_cliffords() {
    let n = 4;
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..25 {
        let mut dm = DensityMatrix::zero_state(n);
        let mut tb = Tableau::new(n);
        for _ in 0..30 {
            match rng.gen_range(0..5) {
                0 => {
                    let q = rng.gen_range(0..n);
                    gates::h(&mut dm, q);
                    tb.h(q);
                }
                1 => {
                    let q = rng.gen_range(0..n);
                    gates::s(&mut dm, q);
                    tb.s(q);
                }
                2 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    gates::cnot(&mut dm, a, b);
                    tb.cx(a, b);
                }
                3 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    gates::cz(&mut dm, a, b);
                    tb.cz(a, b);
                }
                _ => {
                    let q = rng.gen_range(0..n);
                    gates::x(&mut dm, q);
                    tb.x(q);
                }
            }
        }
        for q in 0..n {
            let p_dm = hetarch::qsim::measure::prob_one(&dm, q);
            let p_tb = tb.prob_one(q);
            assert!(
                (p_dm - p_tb).abs() < 1e-9,
                "trial {trial}, qubit {q}: dm {p_dm} vs tableau {p_tb}"
            );
        }
    }
}

/// Collapse consistency: measuring in one simulator and conditioning the
/// other on the same outcome keeps them in lockstep.
#[test]
fn measurement_collapse_agrees() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let mut dm = DensityMatrix::zero_state(3);
        let mut tb = Tableau::new(3);
        gates::h(&mut dm, 0);
        tb.h(0);
        gates::cnot(&mut dm, 0, 1);
        tb.cx(0, 1);
        gates::cnot(&mut dm, 1, 2);
        tb.cx(1, 2);

        let outcome = rng.gen::<bool>();
        let got = tb.measure_forced(0, outcome);
        assert_eq!(got, outcome, "GHZ first measurement is random");
        // Condition the density matrix on the same outcome.
        hetarch::qsim::measure::postselect_z(&mut dm, 0, outcome).expect("non-zero branch");
        for q in 1..3 {
            let p_dm = hetarch::qsim::measure::prob_one(&dm, q);
            let p_tb = tb.prob_one(q);
            assert!((p_dm - p_tb).abs() < 1e-9);
        }
    }
}

/// The frame sampler's depolarizing statistics match the density-matrix
/// channel: a depolarized |0> measured in Z flips with probability 2p/3.
/// The tolerance is the testkit sigma contract (5σ at this shot count)
/// rather than a hand-picked constant.
#[test]
fn frame_sampler_statistics_match_channel() {
    let p = 0.24;
    // Density matrix: exact flip probability.
    let mut dm = DensityMatrix::zero_state(1);
    Kraus1::depolarizing(p).unwrap().apply(&mut dm, 0);
    let exact = hetarch::qsim::measure::prob_one(&dm, 0);

    // Frame sampler: Monte Carlo.
    let mut c = Circuit::new(1);
    c.depolarize1(p, &[0]);
    c.measure(&[0], 0.0);
    let shots = 400_000;
    let mut sampler = hetarch::stab::frame::FrameSampler::new(1, shots, 99);
    let flips = sampler.run(&c).meas_flips.count_ones(0) as u64;

    BinomialTest::new(flips, shots as u64).assert_compatible(
        exact,
        5.0,
        "frame-sampler depolarizing flip rate",
    );
}

/// The Pauli-twirled idle model used by the stabilizer side reproduces the
/// exact T1/T2 channel's measurement statistics on Z-basis states.
#[test]
fn twirled_idle_matches_exact_channel_populations() {
    let idle = IdleParams::new(0.5e-3, 0.4e-3).unwrap();
    let t = 50e-6;

    // Exact: |1> decays to e^{-t/T1}.
    let mut dm = DensityMatrix::zero_state(1);
    gates::x(&mut dm, 0);
    idle.channel(t).unwrap().apply(&mut dm, 0);
    let exact = hetarch::qsim::measure::prob_one(&dm, 0);

    // Twirl: X or Y flips |1>.
    let probs = idle.twirl_probs(t);
    let twirl = 1.0 - (probs.px + probs.py);
    // The twirl symmetrizes decay (no spontaneous-emission bias), so it
    // differs from the exact channel by at most gamma/2.
    let gamma = 1.0 - (-t / idle.t1).exp();
    assert!(
        (exact - twirl).abs() <= gamma / 2.0 + 1e-9,
        "exact {exact} vs twirl {twirl} (gamma = {gamma})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential test: for a random Clifford circuit with depolarizing
    /// noise, the sharded frame sampler's flip statistics agree with the
    /// exact density-matrix probabilities on every qubit whose noiseless
    /// measurement outcome is deterministic.
    ///
    /// The circuit generation, simulator plumbing, and shot-count-derived
    /// tolerances all live in `hetarch::testkit` ([`DiffOracle`]); the main
    /// 64-case sweep runs in `tests/diff_oracle.rs`, this is a smoke-sized
    /// sample wired through the same oracle.
    #[test]
    fn frame_sampler_matches_density_matrix_on_noisy_cliffords(
        circuit in noisy_circuit(4, 8, 24, NoiseConfig::default()),
        seed in 0u64..1_000_000,
    ) {
        DiffOracle::new(20_000, seed).with_workers(2).assert_agrees(&circuit);
    }
}

/// A Bell pair built by each substrate yields identical stabilizer
/// expectation values.
#[test]
fn bell_pair_stabilizers_agree() {
    let mut dm = DensityMatrix::zero_state(2);
    gates::h(&mut dm, 0);
    gates::cnot(&mut dm, 0, 1);
    // XX and ZZ expectations from the density matrix.
    let xx = dm.expectation_pauli(0b11, 0b00);
    let zz = dm.expectation_pauli(0b00, 0b11);
    assert!((xx.re - 1.0).abs() < 1e-10);
    assert!((zz.re - 1.0).abs() < 1e-10);

    // The tableau's stabilizer generators are +XX and +ZZ.
    let mut tb = Tableau::new(2);
    tb.h(0);
    tb.cx(0, 1);
    let gens: std::collections::HashSet<String> =
        (0..2).map(|i| tb.stabilizer(i).to_string()).collect();
    assert!(gens.contains("+XX"));
    assert!(gens.contains("+ZZ"));
}
