//! Cross-validation between the two independent simulation substrates: the
//! density-matrix simulator (hetarch-qsim) and the stabilizer tableau /
//! frame sampler (hetarch-stab).

use hetarch::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies the same random Clifford circuit to both simulators and compares
/// single-qubit Z-measurement probabilities.
#[test]
fn tableau_matches_density_matrix_on_random_cliffords() {
    let n = 4;
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..25 {
        let mut dm = DensityMatrix::zero_state(n);
        let mut tb = Tableau::new(n);
        for _ in 0..30 {
            match rng.gen_range(0..5) {
                0 => {
                    let q = rng.gen_range(0..n);
                    gates::h(&mut dm, q);
                    tb.h(q);
                }
                1 => {
                    let q = rng.gen_range(0..n);
                    gates::s(&mut dm, q);
                    tb.s(q);
                }
                2 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    gates::cnot(&mut dm, a, b);
                    tb.cx(a, b);
                }
                3 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    gates::cz(&mut dm, a, b);
                    tb.cz(a, b);
                }
                _ => {
                    let q = rng.gen_range(0..n);
                    gates::x(&mut dm, q);
                    tb.x(q);
                }
            }
        }
        for q in 0..n {
            let p_dm = hetarch::qsim::measure::prob_one(&dm, q);
            let p_tb = tb.prob_one(q);
            assert!(
                (p_dm - p_tb).abs() < 1e-9,
                "trial {trial}, qubit {q}: dm {p_dm} vs tableau {p_tb}"
            );
        }
    }
}

/// Collapse consistency: measuring in one simulator and conditioning the
/// other on the same outcome keeps them in lockstep.
#[test]
fn measurement_collapse_agrees() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let mut dm = DensityMatrix::zero_state(3);
        let mut tb = Tableau::new(3);
        gates::h(&mut dm, 0);
        tb.h(0);
        gates::cnot(&mut dm, 0, 1);
        tb.cx(0, 1);
        gates::cnot(&mut dm, 1, 2);
        tb.cx(1, 2);

        let outcome = rng.gen::<bool>();
        let got = tb.measure_forced(0, outcome);
        assert_eq!(got, outcome, "GHZ first measurement is random");
        // Condition the density matrix on the same outcome.
        hetarch::qsim::measure::postselect_z(&mut dm, 0, outcome).expect("non-zero branch");
        for q in 1..3 {
            let p_dm = hetarch::qsim::measure::prob_one(&dm, q);
            let p_tb = tb.prob_one(q);
            assert!((p_dm - p_tb).abs() < 1e-9);
        }
    }
}

/// The frame sampler's depolarizing statistics match the density-matrix
/// channel: a depolarized |0> measured in Z flips with probability 2p/3.
#[test]
fn frame_sampler_statistics_match_channel() {
    let p = 0.24;
    // Density matrix: exact flip probability.
    let mut dm = DensityMatrix::zero_state(1);
    Kraus1::depolarizing(p).unwrap().apply(&mut dm, 0);
    let exact = hetarch::qsim::measure::prob_one(&dm, 0);

    // Frame sampler: Monte Carlo.
    let mut c = Circuit::new(1);
    c.depolarize1(p, &[0]);
    c.measure(&[0], 0.0);
    let shots = 400_000;
    let mut sampler = hetarch::stab::frame::FrameSampler::new(1, shots, 99);
    let flips = sampler.run(&c).meas_flips.count_ones(0) as f64 / shots as f64;

    assert!(
        (flips - exact).abs() < 0.003,
        "frame sampler {flips} vs exact {exact}"
    );
}

/// The Pauli-twirled idle model used by the stabilizer side reproduces the
/// exact T1/T2 channel's measurement statistics on Z-basis states.
#[test]
fn twirled_idle_matches_exact_channel_populations() {
    let idle = IdleParams::new(0.5e-3, 0.4e-3).unwrap();
    let t = 50e-6;

    // Exact: |1> decays to e^{-t/T1}.
    let mut dm = DensityMatrix::zero_state(1);
    gates::x(&mut dm, 0);
    idle.channel(t).unwrap().apply(&mut dm, 0);
    let exact = hetarch::qsim::measure::prob_one(&dm, 0);

    // Twirl: X or Y flips |1>.
    let probs = idle.twirl_probs(t);
    let twirl = 1.0 - (probs.px + probs.py);
    // The twirl symmetrizes decay (no spontaneous-emission bias), so it
    // differs from the exact channel by at most gamma/2.
    let gamma = 1.0 - (-t / idle.t1).exp();
    assert!(
        (exact - twirl).abs() <= gamma / 2.0 + 1e-9,
        "exact {exact} vs twirl {twirl} (gamma = {gamma})"
    );
}

/// One element of a random noisy Clifford circuit for the differential test.
#[derive(Clone, Debug)]
enum NoisyOp {
    H(u32),
    S(u32),
    X(u32),
    Cx(u32, u32),
    Cz(u32, u32),
    Depol(u32, f64),
}

fn noisy_op(n: u32) -> impl Strategy<Value = NoisyOp> {
    prop_oneof![
        (0..n).prop_map(NoisyOp::H),
        (0..n).prop_map(NoisyOp::S),
        (0..n).prop_map(NoisyOp::X),
        (0..n, 1..n).prop_map(move |(a, d)| NoisyOp::Cx(a, (a + d) % n)),
        (0..n, 1..n).prop_map(move |(a, d)| NoisyOp::Cz(a, (a + d) % n)),
        (0..n, 0.01f64..0.15).prop_map(|(q, p)| NoisyOp::Depol(q, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential test: for a random Clifford circuit with depolarizing
    /// noise, the sharded frame sampler's flip statistics agree with the
    /// exact density-matrix probabilities on every qubit whose noiseless
    /// measurement outcome is deterministic.
    ///
    /// With 20 000 shots, the Hoeffding bound gives
    /// `P(|f - p| > t) <= 2 exp(-2 N t^2) ~ 1e-6` at `t = 0.019`; the test
    /// uses `t = 0.025` for slack across the <= 4 comparisons per case.
    #[test]
    fn frame_sampler_matches_density_matrix_on_noisy_cliffords(
        n in 2u32..=4,
        ops in proptest::collection::vec(noisy_op(4), 8..24),
        seed in 0u64..1_000_000,
    ) {
        let shots = 20_000usize;
        let mut circuit = Circuit::new(n);
        let mut dm = DensityMatrix::zero_state(n as usize);
        let mut tb = Tableau::new(n as usize);
        for op in &ops {
            // Strategies draw qubits in 0..4; fold into range for small n.
            match *op {
                NoisyOp::H(q) => {
                    let q = q % n;
                    circuit.h(&[q]);
                    gates::h(&mut dm, q as usize);
                    tb.h(q as usize);
                }
                NoisyOp::S(q) => {
                    let q = q % n;
                    circuit.s(&[q]);
                    gates::s(&mut dm, q as usize);
                    tb.s(q as usize);
                }
                NoisyOp::X(q) => {
                    let q = q % n;
                    circuit.x(&[q]);
                    gates::x(&mut dm, q as usize);
                    tb.x(q as usize);
                }
                NoisyOp::Cx(a, b) => {
                    let (a, b) = (a % n, b % n);
                    if a == b { continue; }
                    circuit.cx(&[(a, b)]);
                    gates::cnot(&mut dm, a as usize, b as usize);
                    tb.cx(a as usize, b as usize);
                }
                NoisyOp::Cz(a, b) => {
                    let (a, b) = (a % n, b % n);
                    if a == b { continue; }
                    circuit.cz(&[(a, b)]);
                    gates::cz(&mut dm, a as usize, b as usize);
                    tb.cz(a as usize, b as usize);
                }
                NoisyOp::Depol(q, p) => {
                    let q = q % n;
                    circuit.depolarize1(p, &[q]);
                    Kraus1::depolarizing(p).unwrap().apply(&mut dm, q as usize);
                }
            }
        }
        let qubits: Vec<u32> = (0..n).collect();
        circuit.measure(&qubits, 0.0);

        let pool = hetarch::exec::WorkerPool::new(2);
        let result = hetarch::stab::frame::FrameSampler::sample(&circuit, shots, seed, &pool);

        for q in 0..n as usize {
            // The frame sampler reports flips relative to the noiseless
            // reference outcome, which is only meaningful where that
            // outcome is deterministic.
            let p_ref = tb.prob_one(q);
            if (p_ref - 0.5).abs() < 0.25 {
                continue;
            }
            let reference_one = p_ref > 0.5;
            let p_one = hetarch::qsim::measure::prob_one(&dm, q);
            let expected_flip = if reference_one { 1.0 - p_one } else { p_one };
            let observed_flip =
                result.meas_flips.count_ones(q) as f64 / shots as f64;
            prop_assert!(
                (observed_flip - expected_flip).abs() < 0.025,
                "qubit {}: observed flip rate {} vs density-matrix {}",
                q, observed_flip, expected_flip
            );
        }
    }
}

/// A Bell pair built by each substrate yields identical stabilizer
/// expectation values.
#[test]
fn bell_pair_stabilizers_agree() {
    let mut dm = DensityMatrix::zero_state(2);
    gates::h(&mut dm, 0);
    gates::cnot(&mut dm, 0, 1);
    // XX and ZZ expectations from the density matrix.
    let xx = dm.expectation_pauli(0b11, 0b00);
    let zz = dm.expectation_pauli(0b00, 0b11);
    assert!((xx.re - 1.0).abs() < 1e-10);
    assert!((zz.re - 1.0).abs() < 1e-10);

    // The tableau's stabilizer generators are +XX and +ZZ.
    let mut tb = Tableau::new(2);
    tb.h(0);
    tb.cx(0, 1);
    let gens: std::collections::HashSet<String> =
        (0..2).map(|i| tb.stabilizer(i).to_string()).collect();
    assert!(gens.contains("+XX"));
    assert!(gens.contains("+ZZ"));
}
