//! Differential suite for the allocation-free union-find decode paths.
//!
//! The scratch (`decode_with`), sparse (`decode_defects`), and batch
//! (`decode_shots` / `count_failures`) paths must be **bitwise-equal** to
//! the pristine per-shot [`UnionFindDecoder::decode_reference`] on every
//! syndrome — that is the DESIGN.md §5k contract. This suite drives the
//! comparison with proptest-generated matching graphs (random topology,
//! weights, and observable masks) under random and adversarial syndromes,
//! checks that a scratch arena stays healthy across thousands of
//! interleaved decodes, and pins worker-count invariance of the surface
//! shard loops that consume the batch path.

use hetarch::exec::WorkerPool;
use hetarch::stab::bits::BitTable;
use hetarch::stab::codes::{SurfaceDecoder, SurfaceMemory, SurfaceNoise};
use hetarch::stab::decoder::{MatchingGraph, UnionFindDecoder};
use hetarch::testkit::decoder::assert_decode_paths_agree;
use hetarch_exec::rare::RareConfig;
use proptest::prelude::*;

/// A random connected matching graph in which every node can reach the
/// boundary: a random spanning tree over `n` nodes, a few extra chords,
/// and 1–4 boundary edges. Connectivity plus at least one boundary edge
/// guarantees `decode_reference` terminates (an odd cluster always has
/// somewhere left to grow until it absorbs the boundary), which the old
/// decoder required and the scratch path now enforces via its stall
/// detector.
fn graph_strategy() -> impl Strategy<Value = MatchingGraph> {
    // The vendored proptest subset has no `prop_flat_map`, so draw
    // max-size ingredient pools and consume only the prefix each sampled
    // `n` needs, folding raw picks into valid node indices by modulus.
    (
        2usize..=10,
        proptest::collection::vec((0u32..u32::MAX, 1u32..=45, 0u64..4), 9),
        proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, 1u32..=45, 0u64..4), 0..=6),
        proptest::collection::vec((0u32..u32::MAX, 1u32..=45, 0u64..4), 1..=4),
    )
        .prop_map(|(n, tree, extras, boundaries)| {
            let mut g = MatchingGraph::new(n);
            for (i, &(pick, w, obs)) in tree.iter().take(n - 1).enumerate() {
                let child = (i + 1) as u32;
                let parent = pick % child; // uniform over already-placed nodes
                g.add_edge(parent, Some(child), f64::from(w) / 100.0, obs);
            }
            for &(u, v, w, obs) in &extras {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    g.add_edge(u, Some(v), f64::from(w) / 100.0, obs);
                }
            }
            for &(u, w, obs) in &boundaries {
                g.add_edge(u % n as u32, None, f64::from(w) / 100.0, obs);
            }
            g
        })
}

/// Deterministic syndrome battery for a given node count: the adversarial
/// corners (empty, all-on, alternating, each singleton) plus an LCG sweep
/// of random patterns.
fn syndrome_battery(n: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut battery = vec![
        vec![false; n],
        vec![true; n],
        (0..n).map(|i| i % 2 == 0).collect::<Vec<bool>>(),
    ];
    for d in 0..n {
        let mut s = vec![false; n];
        s[d] = true;
        battery.push(s);
    }
    let mut state = seed | 1;
    for _ in 0..24 {
        battery.push(
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) & 1 == 1
                })
                .collect(),
        );
    }
    battery
}

/// Packs syndromes into a detector table (one shot per syndrome) with an
/// LCG-filled observable row, the shape `assert_decode_paths_agree` wants.
fn pack(syndromes: &[Vec<bool>], n: usize, seed: u64) -> (BitTable, BitTable) {
    let mut detectors = BitTable::new(n, syndromes.len());
    let mut observables = BitTable::new(1, syndromes.len());
    let mut state = seed | 1;
    for (shot, syn) in syndromes.iter().enumerate() {
        for (d, &s) in syn.iter().enumerate() {
            detectors.set(d, shot, s);
        }
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        observables.set(0, shot, (state >> 33) & 1 == 1);
    }
    (detectors, observables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every decode path — one fresh scratch reused across the whole
    /// battery, the sparse defect-list entry, and the packed batch path —
    /// reproduces `decode_reference` bit for bit on random graphs under
    /// random and adversarial syndromes.
    fn scratch_and_batch_match_reference(
        graph in graph_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let uf = UnionFindDecoder::new(&graph);
        let n = uf.num_nodes();
        let battery = syndrome_battery(n, seed);
        let mut scratch = uf.new_scratch();
        for syn in &battery {
            let reference = uf.decode_reference(syn);
            prop_assert_eq!(uf.decode_with(&mut scratch, syn), reference);
            let defects: Vec<u32> = syn
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| s.then_some(i as u32))
                .collect();
            prop_assert_eq!(uf.decode_defects(&mut scratch, &defects), reference);
        }
        let (detectors, observables) = pack(&battery, n, seed ^ 0x9e3779b97f4a7c15);
        assert_decode_paths_agree(&uf, &detectors, &observables);
    }

    /// Scratch reuse leaves no residue: a syndrome decodes to the same
    /// answer before and after 1000 interleaved decodes of unrelated
    /// patterns through the same arena (epoch reset discipline).
    fn scratch_is_stateless_across_thousand_decodes(
        graph in graph_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let uf = UnionFindDecoder::new(&graph);
        let n = uf.num_nodes();
        let probe: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let expected = uf.decode_reference(&probe);
        let mut scratch = uf.new_scratch();
        prop_assert_eq!(uf.decode_with(&mut scratch, &probe), expected);
        let mut state = seed | 1;
        let mut syn = vec![false; n];
        for _ in 0..1000 {
            for s in syn.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *s = (state >> 33) & 1 == 1;
            }
            uf.decode_with(&mut scratch, &syn);
        }
        prop_assert_eq!(uf.decode_with(&mut scratch, &probe), expected);
    }
}

/// The sharded surface decode loop sums per-shard failure counts, so the
/// logical error rate must be bit-identical for every worker count.
#[test]
fn logical_error_rate_is_worker_count_invariant() {
    let mem = SurfaceMemory::new(3, 3, SurfaceNoise::default());
    let baseline =
        mem.logical_error_rate_on(&WorkerPool::new(1), SurfaceDecoder::UnionFind, 4096, 71);
    for workers in [2, 8] {
        let rate = mem.logical_error_rate_on(
            &WorkerPool::new(workers),
            SurfaceDecoder::UnionFind,
            4096,
            71,
        );
        assert_eq!(rate, baseline, "{workers} workers diverged");
    }
}

/// Same invariance for the rare-event stratified path, which mixes the
/// enumerated per-shot callback with sharded batch counting.
#[test]
fn rare_event_report_is_worker_count_invariant() {
    let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
    let config = RareConfig {
        max_strata: 5,
        shots_per_stratum: 512,
        enumerate_threshold: 128,
        ..RareConfig::default()
    };
    let baseline =
        mem.logical_error_rate_rare_on(&WorkerPool::new(1), SurfaceDecoder::UnionFind, config, 29);
    for workers in [2, 8] {
        let outcome = mem.logical_error_rate_rare_on(
            &WorkerPool::new(workers),
            SurfaceDecoder::UnionFind,
            config,
            29,
        );
        assert_eq!(
            outcome.report(),
            baseline.report(),
            "{workers} workers diverged"
        );
    }
}
