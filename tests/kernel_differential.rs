//! Differential property suite for the precompiled superoperator kernels:
//! `Kraus1::apply` / `Kraus2::apply` (the `ChannelKernel` fast path) must
//! match the Kraus-sum reference implementation (`apply_reference`) to
//! float precision on random channels and random states. The cross-model
//! contract is closed by [`DiffOracle`]: its exact path applies channels
//! through the kernels, so the sampler and composed-error models check the
//! kernel output against independent physics.

use hetarch::qsim::channels::{IdleParams, Kraus1, Kraus2};
use hetarch::qsim::kernel::{ChannelKernel1, ChannelKernel2};
use hetarch::qsim::matrix::Mat;
use hetarch::qsim::state::DensityMatrix;
use hetarch::qsim::{gates, measure};
use hetarch::testkit::prelude::*;
use proptest::prelude::*;

const TOL: f64 = 1e-12;

fn assert_states_close(kernel: &DensityMatrix, reference: &DensityMatrix) {
    assert_eq!(kernel.dim(), reference.dim());
    for (a, b) in kernel.as_slice().iter().zip(reference.as_slice()) {
        assert!(
            a.approx_eq(*b, TOL),
            "kernel {a} vs reference {b} (|Δ| = {:.3e})",
            (*a - *b).abs()
        );
    }
}

/// A random mixed state on `n` qubits: random local rotations, an
/// entangling ladder, and a touch of depolarizing noise so the state has
/// full-rank support (pure states can hide errors in the zero block).
fn random_state(n: usize, angles: &[f64], noise: f64) -> DensityMatrix {
    let mut rho = DensityMatrix::zero_state(n);
    for (q, chunk) in angles.chunks(3).take(n).enumerate() {
        gates::rx(&mut rho, q, chunk[0]);
        gates::ry(&mut rho, q, chunk[1]);
        gates::rz(&mut rho, q, chunk[2]);
    }
    for q in 1..n {
        gates::cnot(&mut rho, q - 1, q);
    }
    let depol = Kraus1::depolarizing(noise).expect("valid probability");
    for q in 0..n {
        depol.apply(&mut rho, q);
    }
    rho
}

/// A random single-qubit CPTP channel assembled from the library primitives.
fn kraus1_strategy() -> impl Strategy<Value = Kraus1> {
    let primitive = (0u8..5, 0.0..0.9f64).prop_map(|(which, p)| match which {
        0 => Kraus1::depolarizing(p).unwrap(),
        1 => Kraus1::amplitude_damping(p).unwrap(),
        2 => Kraus1::phase_flip(p).unwrap(),
        3 => Kraus1::bit_flip(p).unwrap(),
        _ => IdleParams::new(300e-6, 150e-6)
            .unwrap()
            .channel(p * 100e-6)
            .unwrap(),
    });
    // `then` multiplies operator counts (up to 4 × 4 × 4 = 64 operators),
    // exactly the regime where the one-pass kernel pays off.
    proptest::collection::vec(primitive, 1..=3).prop_map(|chain| {
        chain
            .iter()
            .skip(1)
            .fold(chain[0].clone(), |acc, c| acc.then(c))
    })
}

/// A random two-qubit CPTP channel: either a tensor product of two
/// single-qubit channels (completeness is preserved by the Kronecker
/// product) or a two-qubit depolarizing channel.
fn kraus2_strategy() -> impl Strategy<Value = Kraus2> {
    prop_oneof![
        (kraus1_strategy(), kraus1_strategy()).prop_map(|(a, b)| {
            let mut ops = Vec::new();
            for ka in a.ops() {
                for kb in b.ops() {
                    ops.push(ka.kron(kb));
                }
            }
            Kraus2::new(ops).expect("kron of CPTP sets is CPTP")
        }),
        (0.0..0.9f64).prop_map(|p| Kraus2::depolarizing(p).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: the compiled superoperator path agrees with
    /// the Kraus-sum reference on every entry of the output state.
    fn kernel1_matches_reference(
        ch in kraus1_strategy(),
        angles in proptest::collection::vec(0.0..std::f64::consts::TAU, 9),
        noise in 0.0..0.2f64,
        q in 0usize..3,
    ) {
        let mut via_kernel = random_state(3, &angles, noise);
        let mut via_reference = via_kernel.clone();
        ch.apply(&mut via_kernel, q);
        ch.apply_reference(&mut via_reference, q);
        assert_states_close(&via_kernel, &via_reference);
    }

    fn kernel2_matches_reference(
        ch in kraus2_strategy(),
        angles in proptest::collection::vec(0.0..std::f64::consts::TAU, 12),
        noise in 0.0..0.2f64,
        pair in prop_oneof![Just((0usize, 1usize)), Just((3, 1)), Just((2, 0)), Just((1, 3))],
    ) {
        let mut via_kernel = random_state(4, &angles, noise);
        let mut via_reference = via_kernel.clone();
        ch.apply(&mut via_kernel, pair.0, pair.1);
        ch.apply_reference(&mut via_reference, pair.0, pair.1);
        assert_states_close(&via_kernel, &via_reference);
    }

    /// Compiling the same Kraus set twice yields identical kernels, and the
    /// lazily cached kernel inside the channel equals a fresh compile —
    /// the cache can never serve a stale or order-dependent result.
    fn kernel_compilation_is_deterministic(p in 0.0..1.0f64) {
        let ch1 = Kraus1::depolarizing(p).unwrap();
        prop_assert_eq!(*ch1.kernel(), ChannelKernel1::compile(ch1.ops()));
        let ch2 = Kraus2::depolarizing(p).unwrap();
        prop_assert_eq!(ch2.kernel().clone(), ChannelKernel2::compile(ch2.ops()));
    }
}

/// A trace-decreasing map (a measurement branch) round-trips through the
/// kernel identically to the reference: the kernel contract does not
/// assume CPTP completeness.
#[test]
fn kernel_handles_trace_decreasing_maps() {
    let p0 = Mat::from_reals(2, &[1.0, 0.0, 0.0, 0.0]);
    let kernel = ChannelKernel1::compile(std::slice::from_ref(&p0));
    let mut rho = DensityMatrix::zero_state(2);
    gates::h(&mut rho, 0);
    gates::cnot(&mut rho, 0, 1);
    kernel.apply(&mut rho, 0);
    // P0 ρ P0 on half of a Bell pair leaves weight 1/2 on |00><00|.
    assert!((measure::prob_one(&rho, 1) - 0.0).abs() < TOL);
    assert!((rho.trace().re - 0.5).abs() < TOL);
}

/// Cross-model closure: the differential oracle's exact path now routes
/// every depolarizing event through the compiled kernels, and the frame
/// sampler and composed-error model — neither of which knows about
/// superoperators — still agree with it.
#[test]
fn oracle_agrees_with_kernel_backed_exact_path() {
    let circuit = NoisyCircuit {
        num_qubits: 3,
        ops: vec![
            NoisyOp::H(0),
            NoisyOp::Depol(0, 0.11),
            NoisyOp::Cx(0, 1),
            NoisyOp::X(2),
            NoisyOp::Depol(1, 0.06),
            NoisyOp::Cx(1, 2),
            NoisyOp::Depol(2, 0.09),
        ],
    };
    DiffOracle::new(40_000, 29).assert_agrees(&circuit);
}
