//! Cross-crate integration: devices → cells → modules plumbing.

use hetarch::prelude::*;

#[test]
fn catalog_devices_build_all_standard_cells() {
    let lib = CellLibrary::new();
    let transmon = catalog::fixed_frequency_qubit();
    for storage in [
        catalog::memory_3d(),
        catalog::multimode_resonator_3d(),
        catalog::on_chip_multimode_resonator(),
    ] {
        let reg = lib.get::<RegisterCell>(&transmon, &storage);
        assert!(reg.load.fidelity > 0.9, "{}", storage.name);
        let usc = lib.get::<UscCell>(&transmon, &storage);
        assert!(usc.check2.fidelity > 0.8, "{}", storage.name);
        let seq = lib.get::<SeqOpCell>(&transmon, &storage);
        assert!(seq.seq_cnot.fidelity > 0.8, "{}", storage.name);
    }
    let pc = lib.get::<ParCheckCell>(&transmon, &catalog::flux_tunable_qubit());
    assert!(pc.parity.fidelity > 0.9);
}

#[test]
fn design_rules_reject_pathological_layouts() {
    // A storage device coupled to two computes breaks DR2/DR3.
    let mut g = DeviceGraph::new();
    let s = g.add_device("s", catalog::multimode_resonator_3d(), false);
    let c1 = g.add_device("c1", catalog::fixed_frequency_qubit(), false);
    let c2 = g.add_device("c2", catalog::fixed_frequency_qubit(), false);
    g.connect(s, c1);
    g.connect(s, c2);
    let violations = validate(&g, 0).unwrap_err();
    assert!(violations.len() >= 2);
}

#[test]
fn cell_library_cache_feeds_dse_ledger() {
    let lib = CellLibrary::new();
    let c = catalog::coherence_limited_compute(0.5e-3);
    for _ in 0..4 {
        for ts in [1e-3, 5e-3] {
            lib.get::<RegisterCell>(&c, &catalog::coherence_limited_storage(ts));
        }
    }
    let stats = lib.stats();
    assert_eq!(stats.misses, 2, "two distinct design points");
    assert_eq!(stats.hits, 6, "revisits served from cache");
    assert_eq!(stats.kind(CellKind::Register).misses, 2);
    assert_eq!(stats.kind(CellKind::Usc).misses, 0);
    assert!(
        stats.sim_seconds_saved > 0.0,
        "hits credit saved simulation"
    );

    let mut ledger = CostLedger::new();
    ledger.record_cell_sim(2);
    ledger.record_cell_sim(2);
    ledger.record_cache_hits(stats.hits);
    ledger.record_module(12, 10_000);
    assert!(ledger.reduction_factor() > 1e3);
}

#[test]
fn dse_sweep_runs_modules_in_parallel() {
    let space = DesignSpace::new(vec![Axis::new("ts", vec![1e-3, 12.5e-3])]);
    let results = sweep(&space, |p| {
        let cfg = DistillConfig::heterogeneous(p.get("ts"), 1e6, 5);
        DistillModule::new(cfg).run(0.5e-3).rounds_attempted
    });
    assert_eq!(results.len(), 2);
    for (_, attempts) in &results {
        assert!(*attempts > 0);
    }
}

#[test]
fn all_small_codes_validate_and_decode() {
    for code in [
        steane(),
        color_17(),
        reed_muller_15(),
        rotated_surface_code(3),
    ] {
        assert!(code.is_css());
        let dec = LookupDecoder::new(&code, 1);
        // Every weight-1 error decodes cleanly.
        for q in 0..code.num_qubits() {
            let e = PauliString::from_sparse(code.num_qubits(), &[(q, Pauli::X)]);
            let corr = dec.decode(&code.syndrome_of(&e));
            let residual = e.xor(&corr);
            assert!(code.in_normalizer(&residual));
            assert!(!code.is_logical_error(&residual));
        }
    }
}

#[test]
fn footprint_accounting_spans_cells() {
    use hetarch::devices::footprint::layout_cost;
    let cell = RegisterCell::new(
        catalog::fixed_frequency_qubit(),
        catalog::multimode_resonator_3d(),
    )
    .unwrap();
    let cost = layout_cost(cell.layout());
    assert!(cost.area_mm2 > 1e4, "3D resonator dominates the area");
    assert_eq!(cost.capacity, 11);
    assert_eq!(cost.three_d_devices, 1);
}
