//! Steady-state allocation audit for the batch decode loop.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm pass has sized the scratch arena's pools and lane lists, a second
//! identical pass over the same shots must allocate **nothing**. This test
//! lives in its own integration-test binary on purpose: other tests
//! running on sibling threads would allocate inside the measurement
//! window and poison the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hetarch::stab::codes::{SurfaceMemory, SurfaceNoise};
use hetarch::stab::decoder::UnionFindDecoder;
use hetarch::stab::detector::sample_detectors_on;
use hetarch_exec::WorkerPool;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The steady-state decode loop — syndrome extraction, growth, peeling,
/// and failure counting over 2048 surface-memory shots — performs zero
/// heap allocations once the scratch arena is warm.
#[test]
fn steady_state_batch_decode_allocates_nothing() {
    let mem = SurfaceMemory::new(5, 5, SurfaceNoise::default());
    let circuit = mem.circuit();
    let uf = UnionFindDecoder::new(&mem.matching_graph());
    let pool = WorkerPool::new(1);
    let shots = 2048;
    let samples = sample_detectors_on(&pool, &circuit, shots, 41);
    let mut scratch = uf.new_scratch();

    // Warm pass: sizes the frontier pool (already reserved at build time),
    // the defect/worklist vectors, and the ShotBlock lane lists for the
    // exact shots the measured pass will revisit.
    let warm = uf.count_failures(
        &mut scratch,
        &samples.detectors,
        &samples.observables,
        0,
        0,
        shots,
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let counted = uf.count_failures(
        &mut scratch,
        &samples.detectors,
        &samples.observables,
        0,
        0,
        shots,
    );
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(counted, warm, "warm and measured passes disagree");
    assert_eq!(
        after - before,
        0,
        "steady-state decode performed heap allocations"
    );
}
