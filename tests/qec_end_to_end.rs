//! End-to-end error-corrected memory (paper §4.2 headline behaviours).

use hetarch::prelude::*;
use hetarch::testkit::prelude::*;

fn usc(ts: f64) -> UscChannel {
    UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(ts),
    )
    .unwrap()
    .characterize()
}

fn noise() -> UecNoise {
    UecNoise::default()
}

#[test]
fn surface_code_data_coherence_matters_more_than_ancilla() {
    // Paper Fig. 6: scaling T_CD outperforms scaling T_CA.
    let shots = 6_000;
    let d = 7; // a mid-size code keeps the test fast but meaningful
    let base = SurfaceNoise::default();
    let data_scaled = SurfaceNoise {
        t_data: base.t_data * 5.0,
        ..base
    };
    let anc_scaled = SurfaceNoise {
        t_anc: base.t_anc * 5.0,
        ..base
    };
    let (_, p_data) = SurfaceMemory::new(d, d, data_scaled).logical_error_rate(shots, 41);
    let (_, p_anc) = SurfaceMemory::new(d, d, anc_scaled).logical_error_rate(shots, 41);
    assert!(
        p_data < p_anc,
        "data-scaled {p_data} should beat ancilla-scaled {p_anc}"
    );
}

#[test]
fn surface_code_ratio_pushes_below_threshold() {
    // Paper Fig. 7: with a high T_CD/T_CA ratio, larger distance helps.
    // Coherence times are scaled down 2x from the d=5-vs-d=9 figure setting
    // (ratio still 5) and the distances widened to 3-vs-9 so the per-round
    // gap (~3e-3) is several standard errors at this shot count.
    let shots = 10_000;
    let noise = SurfaceNoise {
        t_data: 0.25e-3, // ratio 5
        t_anc: 0.05e-3,
        ..SurfaceNoise::default()
    };
    let (_, p3) = SurfaceMemory::new(3, 3, noise).logical_error_rate(shots, 43);
    let (_, p9) = SurfaceMemory::new(9, 9, noise).logical_error_rate(shots, 44);
    // Per-round rates over shots × d rounds each; the testkit two-proportion
    // comparison demands a 3σ separation, not just a raw inequality.
    let per_round_sample = |p: f64, d: u64| {
        let rounds = shots as u64 * d;
        BinomialTest::new((p * rounds as f64).round() as u64, rounds)
    };
    assert_rate_below(
        per_round_sample(p9, 9),
        per_round_sample(p3, 3),
        3.0,
        "below threshold, d=9 beats d=3 per round",
    );
}

#[test]
fn uec_favors_non_planar_codes() {
    // Paper Table 3: RM / 17QCC / Steane improve on the UEC; surface codes
    // prefer the homogeneous lattice.
    let shots = 8_000;
    let ch = usc(50e-3);
    for code in [steane(), color_17(), reed_muller_15()] {
        let het = UecModule::new(code.clone(), ch.clone(), noise())
            .logical_error_rate(shots, 47)
            .logical_error_rate;
        let hom = HomModule::new(code.clone(), 0.5e-3, noise())
            .logical_error_rate(shots, 48)
            .logical_error_rate;
        assert!(
            het < hom,
            "{}: heterogeneous {het} should beat homogeneous {hom}",
            code.name()
        );
    }
    // Surface code: the square lattice is native, the baseline wins.
    let het_sc = UecModule::new(rotated_surface_code(3), ch, noise())
        .logical_error_rate(shots, 49)
        .logical_error_rate;
    let hom_sc = hom_surface_logical_error(3, 0.5e-3, noise(), shots, 50);
    assert!(
        hom_sc < het_sc,
        "surface code: homogeneous {hom_sc} should beat UEC {het_sc}"
    );
}

#[test]
fn uec_logical_error_falls_with_storage_coherence() {
    // Paper Fig. 9: every code's curve decreases in Ts.
    let shots = 5_000;
    for code in [steane(), rotated_surface_code(3)] {
        let hi = UecModule::new(code.clone(), usc(0.5e-3), noise())
            .logical_error_rate(shots, 53)
            .logical_error_rate;
        let lo = UecModule::new(code.clone(), usc(50e-3), noise())
            .logical_error_rate(shots, 53)
            .logical_error_rate;
        assert!(
            lo < hi,
            "{}: Ts=50ms ({lo}) should beat Ts=0.5ms ({hi})",
            code.name()
        );
    }
}

#[test]
fn uec_handles_any_code_up_to_capacity() {
    // The same USC hardware executes every shipped code ≤ 30 qubits.
    let ch = usc(50e-3);
    for code in [
        steane(),
        color_17(),
        reed_muller_15(),
        rotated_surface_code(3),
        rotated_surface_code(4),
        rotated_surface_code(5), // 25 data qubits
    ] {
        let m = UecModule::new(code.clone(), ch.clone(), noise());
        let r = m.logical_error_rate(300, 59);
        assert!(
            r.logical_error_rate <= 1.0 && r.cycle_duration > 0.0,
            "{} must run on the UEC",
            code.name()
        );
    }
}
