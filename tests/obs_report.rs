//! Integration checks for the observability layer.
//!
//! Compiled only with the `obs` feature (the file is empty otherwise), and
//! run in CI alongside the determinism and golden suites with
//! `HETARCH_OBS=1` to prove that instrumentation never perturbs results.

#![cfg(feature = "obs")]

use std::sync::{Mutex, MutexGuard, OnceLock};

use hetarch::obs;
use hetarch::prelude::*;
use hetarch::stab::codes::SurfaceDecoder;

/// Serializes tests: the obs registry and runtime gate are process-global.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const UEC_SHOTS: usize = 1500;

fn uec_workload(pool: &WorkerPool) -> UecResult {
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(10e-3),
    )
    .expect("valid USC")
    .characterize();
    UecModule::new(steane(), usc, UecNoise::default()).logical_error_rate_on(pool, UEC_SHOTS, 17)
}

fn surface_workload(pool: &WorkerPool) -> (f64, f64) {
    SurfaceMemory::new(3, 3, SurfaceNoise::default()).logical_error_rate_on(
        pool,
        SurfaceDecoder::UnionFind,
        2000,
        23,
    )
}

fn distill_workload(pool: &WorkerPool) -> Vec<usize> {
    let module = DistillModule::new(DistillConfig::heterogeneous(2.5e-3, 1e6, 7));
    module
        .run_batch_on(pool, 500e-6, 4)
        .into_iter()
        .map(|r| r.delivered)
        .collect()
}

/// The golden (counters-only) report is byte-identical for every worker
/// count: counters track simulation events, never scheduling artifacts.
#[test]
fn golden_report_is_worker_count_invariant() {
    let _guard = serialized();
    obs::force_enabled(true);
    struct Baseline {
        golden: String,
        uec: UecResult,
        surface: (f64, f64),
        distill: Vec<usize>,
    }
    let mut baseline: Option<Baseline> = None;
    for workers in [1, 2, 8] {
        obs::reset();
        let pool = WorkerPool::new(workers);
        let uec = uec_workload(&pool);
        let surface = surface_workload(&pool);
        let distill = distill_workload(&pool);
        let golden = obs::report().golden_json();
        match &baseline {
            None => {
                baseline = Some(Baseline {
                    golden,
                    uec,
                    surface,
                    distill,
                })
            }
            Some(b) => {
                assert_eq!(
                    golden, b.golden,
                    "golden report differs at {workers} workers"
                );
                assert_eq!(uec, b.uec, "UEC result differs at {workers} workers");
                assert_eq!(
                    surface, b.surface,
                    "surface result differs at {workers} workers"
                );
                assert_eq!(
                    distill, b.distill,
                    "distill result differs at {workers} workers"
                );
            }
        }
    }
}

/// Counters account for exactly the work submitted.
#[test]
fn counters_track_submitted_work() {
    let _guard = serialized();
    obs::force_enabled(true);
    obs::reset();
    let pool = WorkerPool::new(2);
    let result = uec_workload(&pool);
    let report = obs::report();
    assert_eq!(report.counters["modules.uec.shots"], UEC_SHOTS as u64);
    assert_eq!(
        report.counters["modules.uec.failures"],
        (result.logical_error_rate * UEC_SHOTS as f64).round() as u64
    );
    let shards = UEC_SHOTS.div_ceil(512) as u64;
    assert_eq!(report.counters["exec.shards_executed"], shards);
    // Full JSON is well-formed enough to embed: keys appear in sorted order.
    let json = report.to_json();
    assert!(json.starts_with("{\"counters\":{"));
    assert!(json.contains("\"modules.uec.shots\":1500"));
}

/// With the runtime gate off nothing is recorded, and results are
/// bit-identical to an instrumented run.
#[test]
fn runtime_gate_off_records_nothing_and_results_match() {
    let _guard = serialized();
    obs::force_enabled(true);
    obs::reset();
    let zeroed = obs::report().golden_json();
    obs::force_enabled(false);
    let pool = WorkerPool::new(4);
    let off = uec_workload(&pool);
    obs::force_enabled(true);
    assert_eq!(
        obs::report().golden_json(),
        zeroed,
        "disabled run must not advance any counter"
    );
    let on = uec_workload(&pool);
    assert_eq!(off, on, "instrumentation must not perturb results");
}
