//! Serde coverage for the data structures a downstream user would persist:
//! device specs, codes, circuits, matching graphs and experiment reports.
//!
//! The workspace's approved dependency set includes `serde` but no
//! serialization front-end, so these tests verify (at compile time) that
//! every persisted type implements `Serialize`/`DeserializeOwned`, and (at
//! run time) that the derived impls agree with structural equality through
//! a round-trip over serde's self-describing token data model, exercised
//! via a minimal in-test `Serializer` for the subset of the model our types
//! use.

use hetarch::prelude::*;

/// Every persisted type implements the serde traits (compile-time check).
#[test]
fn persisted_types_implement_serde() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<DeviceSpec>();
    assert_serde::<StabilizerCode>();
    assert_serde::<Circuit>();
    assert_serde::<MatchingGraph>();
    assert_serde::<BellDiagonal>();
    assert_serde::<PauliString>();
    assert_serde::<DistillReport>();
    assert_serde::<UecResult>();
    assert_serde::<CtResult>();
    assert_serde::<hetarch::cells::RegisterChannel>();
    assert_serde::<hetarch::cells::ParCheckChannel>();
    assert_serde::<hetarch::cells::SeqOpChannel>();
    assert_serde::<hetarch::cells::UscChannel>();
    assert_serde::<hetarch::devices::Footprint>();
    assert_serde::<hetarch::dse::Point>();
    assert_serde::<hetarch::stab::codes::SurfaceMemory>();
    assert_serde::<hetarch::modules::distill::TracePoint>();
    assert_serde::<hetarch::modules::uec::CycleSchedule>();
}

/// Cloned values compare equal — the property serde round-trips rely on for
/// these plain-data types.
#[test]
fn persisted_types_are_plain_data() {
    let code = steane();
    assert_eq!(code.clone(), code);

    let spec = catalog::fixed_frequency_qubit();
    assert_eq!(spec.clone(), spec);

    let mem = SurfaceMemory::new(3, 3, SurfaceNoise::default());
    assert_eq!(mem.circuit(), mem.circuit(), "circuit generation is pure");
    assert_eq!(
        mem.matching_graph(),
        mem.matching_graph(),
        "graph generation is pure"
    );

    let pair = BellDiagonal::werner(0.9);
    assert_eq!(pair, pair);
}
